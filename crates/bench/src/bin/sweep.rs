//! `sweep` — run the (benchmark × design × core-count) grid across OS
//! threads and print a comparison table.
//!
//! ```text
//! sweep [options]
//!   --smoke              tiny workload (CI smoke mode)
//!   --stream             print one JSON line per cell as it completes
//!   --n <samples>        samples per channel (default 256, paper workload)
//!   --cores <list>       comma-separated core counts (default 2,4,8)
//!   --benchmarks <list>  comma-separated subset of MRPFLTR,MRPDLN,SQRT32
//!   --shard <list>       comma-separated shard sizes: each cell splits the
//!                        recording into ≤ s-sample shards and merges (an
//!                        entry of `none` runs the single-window cell), so
//!                        grids sweep shard size × cores
//!   --heatmap <window>   attach a per-bank DM heat map to every cell
//!   --pctrace <limit>    attach a PC trace to every cell
//!   --exec-tier <tier>   interpreted (default) or compiled
//!   --threads <n>        worker threads (default: all hardware threads)
//!   --tenant <id>        tenant the sweep's jobs are submitted as (default 0)
//!   --checkpoint-every <cycles>  checkpoint every job's platform at this
//!                        cadence (jobs become migratable)
//!   --checkpoint-dir <path>  persist each job's latest checkpoint blob
//!                        (requires --checkpoint-every)
//!   --trace-out <path>   write a Chrome trace-event JSON file (Perfetto /
//!                        chrome://tracing loadable, one track per worker)
//!   --stats-json <path>  write the final ServiceStats as one JSON object
//! ```
//!
//! `--stream` turns the sweep into a JSON-lines producer: cells are
//! emitted in completion order (not grid order) the moment the service
//! delivers them, so a long sweep reports incrementally and can be piped
//! into `jq`-style tooling while still running. In this mode stdout
//! carries only the records — the closing summary goes to stderr and the
//! comparison table is suppressed. Every record carries the cell's
//! `energy_uj` (priced at the paper's Table I workload) and, when
//! observers are selected, its merged artifacts — e.g. `--heatmap` adds
//! recording-level `dm_bank_heatmap` per-bank totals even for sharded
//! cells, whose rows were re-indexed onto the global cycle axis at the
//! merge.
//!
//! `--trace-out` enables job-lifecycle telemetry for the whole sweep and,
//! on exit, writes every recorded span (queued → claimed → platform →
//! run, plus steals and merges) as Chrome trace-event JSON. With
//! `--stream` it also interleaves periodic `{"telemetry":…}` snapshot
//! lines — counters, gauges, and latency histograms — between the cell
//! records, so a live consumer can watch queue depth and throughput
//! evolve. Snapshot lines never collide with the `{"schema":2,…}` cell
//! records: consumers filter on the leading key.

use std::io::Write;
use std::process::ExitCode;
use ulp_bench::{run_sweep_with, SweepCell, SweepSpec};
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_platform::ExecTier;
use ulp_service::{ObserverSelection, TenantId};
use ulp_telemetry::Telemetry;

/// One completed cell as a JSON-lines record (`--stream`, schema 2: adds
/// `schema` and `tenant` over the schema-less v1 records). `emitted` and
/// `total` number the *emitted* records: gapless from 1, reaching `total`
/// exactly when every cell of the grid ran and verified.
fn json_line(cell: &SweepCell, tenant: TenantId, emitted: usize, total: usize) -> String {
    let shard = match cell.shard_samples {
        Some(s) => format!("\"shard\":{s},"),
        None => String::new(),
    };
    // Recording-level energy at the paper's Table I workload; absent when
    // that workload is infeasible for the cell's design.
    let energy = match cell.energy_uj {
        Some(uj) => format!("\"energy_uj\":{uj:.3},"),
        None => String::new(),
    };
    // Merged observer artifacts: the heat map's per-bank totals (sharded
    // cells merge every shard's rows onto the global cycle axis first),
    // or the sizes of the other artifact kinds.
    let artifacts = if let Some(map) = cell.artifacts.bank_heat_map() {
        let totals: Vec<String> = map.totals().iter().map(u64::to_string).collect();
        format!(
            "\"dm_bank_heatmap\":[{}],\"heatmap_rows\":{},",
            totals.join(","),
            map.rows.len()
        )
    } else if let Some(trace) = cell.artifacts.pc_trace() {
        format!("\"pc_trace_rows\":{},", trace.len())
    } else if let Some(vcds) = cell.artifacts.vcds() {
        format!("\"vcd_shards\":{},", vcds.len())
    } else {
        String::new()
    };
    format!(
        concat!(
            "{{\"schema\":2,\"benchmark\":\"{}\",\"design\":\"{}\",",
            "\"cores\":{},\"tenant\":{},{}",
            "\"cycles\":{},\"ops_per_cycle\":{:.4},\"lockstep_width\":{:.4},",
            "\"im_accesses\":{},{}{}\"completed\":{},\"total\":{}}}"
        ),
        cell.run.benchmark.name(),
        if cell.run.with_sync {
            "sync"
        } else {
            "baseline"
        },
        cell.cores,
        tenant,
        shard,
        cell.run.stats.cycles,
        cell.run.stats.ops_per_cycle(),
        cell.run.stats.avg_lockstep_width(),
        cell.run.stats.im.total_accesses(),
        energy,
        artifacts,
        emitted,
        total,
    )
}

const USAGE: &str = "usage: sweep [options]
  --smoke              tiny workload (CI smoke mode)
  --stream             print one JSON line per cell as it completes
  --n <samples>        samples per channel (default 256, paper workload)
  --cores <list>       comma-separated core counts (default 2,4,8)
  --benchmarks <list>  comma-separated subset of MRPFLTR,MRPDLN,SQRT32
  --shard <list>       comma-separated shard sizes (or `none`): each cell
                       splits the recording into <= s-sample shards and
                       merges the partial results
  --heatmap <window>   attach a per-bank DM heat map to every cell
                       (cycles per row; merged across shards)
  --pctrace <limit>    attach a PC trace to every cell (cycles per shard)
  --exec-tier <tier>   execution tier for every cell: `interpreted`
                       (default) or `compiled` (bit-identical, faster)
  --threads <n>        worker threads (default: all hardware threads)
  --tenant <id>        tenant the sweep's jobs are submitted as (default 0)
  --checkpoint-every <cycles>
                       checkpoint every job's platform at this cadence in
                       simulated cycles — jobs become migratable: a lost
                       or preempted worker's in-flight job re-queues from
                       its latest checkpoint, bit-identically
  --checkpoint-dir <path>
                       persist each job's latest checkpoint blob as
                       job-<id>.ckpt under this directory (best-effort;
                       requires --checkpoint-every)
  --trace-out <path>   enable telemetry and write a Chrome trace-event
                       JSON file on exit (Perfetto loadable, one track
                       per worker; with --stream also interleaves
                       periodic {\"telemetry\":...} snapshot lines)
  --stats-json <path>  write the final service stats (schema 3, with
                       per-tenant rows and migration counters) as one
                       JSON object";

struct Options {
    smoke: bool,
    stream: bool,
    n: Option<usize>,
    cores: Vec<usize>,
    benchmarks: Vec<Benchmark>,
    shard: Vec<Option<usize>>,
    observers: ObserverSelection,
    exec_tier: ExecTier,
    threads: usize,
    tenant: TenantId,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    trace_out: Option<String>,
    stats_json: Option<String>,
}

fn parse_benchmark(name: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark {name:?}"))
}

fn parse_list<T>(
    value: &str,
    what: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, String> = value.split(',').map(|s| parse(s.trim())).collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("empty list for {what}"));
    }
    Ok(items)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        stream: false,
        n: None,
        cores: vec![2, 4, 8],
        benchmarks: Benchmark::ALL.to_vec(),
        shard: vec![None],
        observers: ObserverSelection::None,
        exec_tier: ExecTier::Interpreted,
        threads: 0,
        tenant: TenantId::DEFAULT,
        checkpoint_every: None,
        checkpoint_dir: None,
        trace_out: None,
        stats_json: None,
    };
    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, what: &str| {
        args.next()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--stream" => opts.stream = true,
            "--n" => {
                opts.n = Some(
                    next_value(&mut args, "--n")?
                        .parse()
                        .map_err(|e| format!("bad value for --n: {e}"))?,
                );
            }
            "--threads" => {
                opts.threads = next_value(&mut args, "--threads")?
                    .parse()
                    .map_err(|e| format!("bad value for --threads: {e}"))?;
            }
            "--tenant" => {
                opts.tenant = TenantId(
                    next_value(&mut args, "--tenant")?
                        .parse()
                        .map_err(|e| format!("bad value for --tenant: {e}"))?,
                );
            }
            "--cores" => {
                opts.cores = parse_list(&next_value(&mut args, "--cores")?, "--cores", |s| {
                    let n: usize = s
                        .parse()
                        .map_err(|e| format!("bad core count {s:?}: {e}"))?;
                    if n == 0 || n > 8 {
                        return Err(format!("core count {n} outside 1..=8"));
                    }
                    Ok(n)
                })?;
            }
            "--benchmarks" => {
                opts.benchmarks = parse_list(
                    &next_value(&mut args, "--benchmarks")?,
                    "--benchmarks",
                    parse_benchmark,
                )?;
            }
            "--shard" => {
                opts.shard = parse_list(&next_value(&mut args, "--shard")?, "--shard", |s| {
                    if s.eq_ignore_ascii_case("none") {
                        return Ok(None);
                    }
                    let samples: usize = s
                        .parse()
                        .map_err(|e| format!("bad shard size {s:?}: {e}"))?;
                    if samples == 0 {
                        return Err("shard size must be positive".into());
                    }
                    Ok(Some(samples))
                })?;
            }
            "--heatmap" => {
                let window: u64 = next_value(&mut args, "--heatmap")?
                    .parse()
                    .map_err(|e| format!("bad value for --heatmap: {e}"))?;
                if window == 0 {
                    return Err("heat-map window must be positive".into());
                }
                opts.observers = ObserverSelection::BankHeatMap { window };
            }
            "--checkpoint-every" => {
                let cycles: u64 = next_value(&mut args, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad value for --checkpoint-every: {e}"))?;
                if cycles == 0 {
                    return Err("checkpoint cadence must be positive".into());
                }
                opts.checkpoint_every = Some(cycles);
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(next_value(&mut args, "--checkpoint-dir")?);
            }
            "--trace-out" => {
                opts.trace_out = Some(next_value(&mut args, "--trace-out")?);
            }
            "--stats-json" => {
                opts.stats_json = Some(next_value(&mut args, "--stats-json")?);
            }
            "--exec-tier" => {
                opts.exec_tier = next_value(&mut args, "--exec-tier")?
                    .parse()
                    .map_err(|e| format!("bad value for --exec-tier: {e}"))?;
            }
            "--pctrace" => {
                let limit: usize = next_value(&mut args, "--pctrace")?
                    .parse()
                    .map_err(|e| format!("bad value for --pctrace: {e}"))?;
                if limit == 0 {
                    return Err("PC-trace limit must be positive".into());
                }
                opts.observers = ObserverSelection::PcTrace { limit };
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut workload = if opts.smoke {
        WorkloadConfig::quick_test()
    } else {
        WorkloadConfig::paper()
    };
    if let Some(n) = opts.n {
        workload.n = n;
    }

    // Telemetry rides along only when a trace was requested: the disabled
    // handle keeps the hot path at a single branch per event.
    let telemetry = if opts.trace_out.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    if opts.checkpoint_dir.is_some() && opts.checkpoint_every.is_none() {
        eprintln!("sweep: --checkpoint-dir requires --checkpoint-every");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if let Some(dir) = &opts.checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("sweep: creating --checkpoint-dir {dir}: {e}");
            return ExitCode::from(2);
        }
    }
    let spec = SweepSpec {
        benchmarks: opts.benchmarks,
        designs: vec![true, false],
        core_counts: opts.cores,
        shard_samples: opts.shard,
        workload,
        observers: opts.observers,
        exec_tier: opts.exec_tier,
        threads: opts.threads,
        // Auto-bounded backpressure queue (four jobs per worker): huge
        // grids are fed at the workers' claim rate.
        queue_capacity: 0,
        tenant: opts.tenant,
        telemetry: telemetry.clone(),
        checkpoint_every: opts.checkpoint_every,
        checkpoint_dir: opts.checkpoint_dir.as_ref().map(std::path::PathBuf::from),
    };
    // Bad geometry is a usage error: report it and exit 2, like every
    // other invalid argument — the sweep library treats it as a caller
    // bug. Sharded entries must plan within the platform buffers;
    // unsharded entries must fit a single window outright.
    for &benchmark in &spec.benchmarks {
        for shard in &spec.shard_samples {
            match shard {
                Some(samples) => {
                    if let Err(e) =
                        ulp_shard::ShardPlan::for_workload(benchmark, &spec.workload, *samples)
                    {
                        eprintln!("sweep: --shard {samples} with {benchmark}: {e}");
                        eprintln!("{USAGE}");
                        return ExitCode::from(2);
                    }
                }
                None => {
                    let n = spec.workload.n;
                    if !(4..=ulp_kernels::layout::MAX_N).contains(&n) {
                        eprintln!(
                            "sweep: --n {n} outside the unsharded range 4..={} — \
                             sweep it with --shard <samples> instead",
                            ulp_kernels::layout::MAX_N
                        );
                        eprintln!("{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    let cells = spec.len();
    let stream = opts.stream;
    let tenant = opts.tenant;
    let start = std::time::Instant::now();
    let mut emitted = 0;
    let results = match run_sweep_with(&spec, |cell, progress| {
        if stream {
            // Suppress records whose outputs diverged from the golden
            // model, so a downstream consumer never ingests them (the
            // pipeline may mask this process's exit code); the post-sweep
            // verification below reports the mismatch and fails the run.
            if cell.run.verify().is_err() {
                return;
            }
            // Number the records this process actually emits, so the
            // stream stays gapless even when a cell was suppressed.
            emitted += 1;
            let mut out = std::io::stdout().lock();
            // Flush per record so a consumer sees cells as they finish,
            // not when the sweep exits.
            writeln!(out, "{}", json_line(cell, tenant, emitted, progress.total))
                .and_then(|()| out.flush())
                .ok();
            // Interleave a metrics snapshot every few records (and on the
            // last one) when telemetry is on. The `{"telemetry":…}` prefix
            // keeps snapshot lines distinguishable from cell records.
            if telemetry.is_enabled() && (emitted % 4 == 0 || progress.completed == progress.total)
            {
                telemetry.collect();
                writeln!(out, "{{\"telemetry\":{}}}", telemetry.snapshot_json())
                    .and_then(|()| out.flush())
                    .ok();
            }
        }
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();

    // Every cell is validated against its golden model regardless of the
    // output mode.
    for cell in &results.cells {
        if let Err(e) = cell.run.verify() {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Exporter artifacts: the Chrome trace (one track per worker, spans
    // for every job-lifecycle phase) and the final service stats. Both
    // are plain files so they survive the process and load straight into
    // Perfetto / jq.
    if let Some(path) = &opts.trace_out {
        telemetry.collect();
        if let Err(e) = std::fs::write(path, telemetry.chrome_trace()) {
            eprintln!("sweep: writing --trace-out {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.stats_json {
        if let Err(e) = std::fs::write(path, results.service.to_json()) {
            eprintln!("sweep: writing --stats-json {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // In --stream mode stdout carries *only* JSON-lines records (so the
    // output stays pipeable into jq-style tooling); the human summary
    // moves to stderr and the table is suppressed — its numbers are all
    // in the records.
    let mut summary: Box<dyn Write> = if stream {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::io::stdout())
    };
    writeln!(
        summary,
        "{cells} runs on {} threads in {:.2} s ({} platforms built, {} reused)",
        results.threads_used,
        elapsed.as_secs_f64(),
        results.platforms_built,
        cells.saturating_sub(results.platforms_built),
    )
    .ok();
    writeln!(
        summary,
        "service: {} jobs, {} steals ({} jobs moved, max batch {}), {} platform-cache hits, {:.2} s wall",
        results.service.jobs_run,
        results.service.steals,
        results.service.jobs_stolen,
        results.service.steal_batch_max,
        results.service.platform_cache_hits,
        results.service.wall.as_secs_f64(),
    )
    .ok();
    writeln!(
        summary,
        "latency: p50 {:?}, p95 {:?}, max {:?} over {} jobs",
        results.service.latency.p50,
        results.service.latency.p95,
        results.service.latency.max,
        results.service.latency.samples,
    )
    .ok();
    if stream {
        return ExitCode::SUCCESS;
    }

    println!();
    println!(
        "{:<8} {:>5} | {:>10} {:>10} | {:>7} | {:>9} {:>9} | {:>5}",
        "bench", "cores", "base cyc", "sync cyc", "speedup", "base o/c", "sync o/c", "IM sav"
    );
    for &benchmark in &spec.benchmarks {
        for &cores in &spec.core_counts {
            let with = results.cell(benchmark, true, cores);
            let without = results.cell(benchmark, false, cores);
            let (Some(with), Some(without)) = (with, without) else {
                continue;
            };
            let im_saving = 1.0
                - with.run.stats.im.total_accesses() as f64
                    / without.run.stats.im.total_accesses() as f64;
            println!(
                "{:<8} {:>5} | {:>10} {:>10} | {:>6.2}x | {:>9.2} {:>9.2} | {:>4.0}%",
                benchmark.name(),
                cores,
                without.run.stats.cycles,
                with.run.stats.cycles,
                results.speedup(benchmark, cores).unwrap_or(0.0),
                without.run.stats.ops_per_cycle(),
                with.run.stats.ops_per_cycle(),
                im_saving * 100.0,
            );
        }
    }
    ExitCode::SUCCESS
}

//! Regenerates the in-text results of Section V-B: speed-up, Ops/cycle,
//! IM/DM access ratios, iso-voltage and voltage-scaled savings,
//! synchronizer power share and clock-tree ratio.

use ulp_bench::{calibrate, gather, intext_report};
use ulp_kernels::WorkloadConfig;

fn main() {
    let cfg = WorkloadConfig::paper();
    eprintln!("running 3 benchmarks x 2 designs (n = {}) ...", cfg.n);
    let data = gather(&cfg).expect("benchmark runs valid");
    let model = calibrate(&data);
    println!("{}", intext_report(&data, &model));
}

//! Regenerates the in-text results of Section V-B: speed-up, Ops/cycle,
//! IM/DM access ratios, iso-voltage and voltage-scaled savings,
//! synchronizer power share and clock-tree ratio.

use ulp_bench::{calibrate, gather, intext_report};
use ulp_kernels::WorkloadConfig;

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("usage: intext");
        println!(
            "Regenerates the in-text results of Section V-B (speed-up, Ops/cycle, \
             access ratios, power savings). Takes no arguments."
        );
        return;
    }
    if let Some(arg) = std::env::args().nth(1) {
        eprintln!("intext: unexpected argument {arg:?} (takes no arguments)");
        std::process::exit(2);
    }
    let cfg = WorkloadConfig::paper();
    eprintln!("running 3 benchmarks x 2 designs (n = {}) ...", cfg.n);
    let data = gather(&cfg).expect("benchmark runs valid");
    let model = calibrate(&data);
    println!("{}", intext_report(&data, &model));
}

//! Regenerates Fig. 3 of the paper: total power versus workload with
//! voltage scaling, for both designs. Pass a benchmark name (mrpfltr,
//! sqrt32, mrpdln) or "all" (default).

use ulp_bench::{calibrate, fig3_report, gather};
use ulp_kernels::{Benchmark, WorkloadConfig};

const USAGE: &str = "usage: fig3 [mrpfltr|sqrt32|mrpdln|all]
Regenerates Fig. 3 of the paper: total power versus workload with voltage
scaling, for both designs (default: all benchmarks).";

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    if let Some(extra) = std::env::args().nth(2) {
        eprintln!("fig3: unexpected argument {extra:?}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let wanted: Vec<Benchmark> = match arg.to_ascii_lowercase().as_str() {
        "mrpfltr" => vec![Benchmark::Mrpfltr],
        "sqrt32" => vec![Benchmark::Sqrt32],
        "mrpdln" => vec![Benchmark::Mrpdln],
        "all" => Benchmark::ALL.to_vec(),
        other => {
            eprintln!("unknown benchmark {other:?}; use mrpfltr|sqrt32|mrpdln|all");
            std::process::exit(2);
        }
    };
    let cfg = WorkloadConfig::paper();
    eprintln!("running 3 benchmarks x 2 designs (n = {}) ...", cfg.n);
    let data = gather(&cfg).expect("benchmark runs valid");
    let model = calibrate(&data);
    for b in wanted {
        println!("{}", fig3_report(&data, &model, b, 16));
        println!();
    }
}

//! `perfgate` — the CI performance-regression gate.
//!
//! ```text
//! perfgate [options]
//!   --dir <path>        directory of BENCH_*.json records
//!                       (default: target/bench-json)
//!   --baseline <path>   checked-in baseline (default: ci/bench-baseline.json)
//!   --tolerance <frac>  allowed fractional regression (default: 0.20)
//!   --write-baseline    regenerate the baseline from the records and exit
//! ```
//!
//! The vendored criterion harness writes one `BENCH_<label>.json` record
//! per benchmark when `ULP_BENCH_JSON_DIR` is set (see `vendor/criterion`).
//! Every record carries a `per_sec` rate — simulated cycles per second for
//! `step_throughput`, jobs per second for `service_throughput` — where
//! higher is faster. The gate compares each baseline entry against the
//! fresh record and fails (exit 1) if any rate dropped by more than the
//! tolerance. Benchmarks present in the records but absent from the
//! baseline are reported but not gated, so adding a bench doesn't require
//! a lockstep baseline update; refresh with `--write-baseline`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: perfgate [options]
  --dir <path>        directory of BENCH_*.json records (default: target/bench-json)
  --baseline <path>   checked-in baseline (default: ci/bench-baseline.json)
  --tolerance <frac>  allowed fractional regression (default: 0.20)
  --write-baseline    regenerate the baseline from the records and exit";

struct Options {
    dir: PathBuf,
    baseline: PathBuf,
    tolerance: f64,
    write_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        dir: PathBuf::from("target/bench-json"),
        baseline: PathBuf::from("ci/bench-baseline.json"),
        tolerance: 0.20,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, what: &str| {
        args.next()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => opts.dir = PathBuf::from(next_value(&mut args, "--dir")?),
            "--baseline" => opts.baseline = PathBuf::from(next_value(&mut args, "--baseline")?),
            "--tolerance" => {
                opts.tolerance = next_value(&mut args, "--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad value for --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&opts.tolerance) {
                    return Err(format!("tolerance {} outside [0, 1)", opts.tolerance));
                }
            }
            "--write-baseline" => opts.write_baseline = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Extracts the `"key": "string"` field of a single-record JSON object,
/// honouring `\"` and `\\` escapes in the value.
fn json_str_field(record: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = record.find(&needle)? + needle.len();
    unescape_until_quote(&record[start..])
}

/// Reads a JSON string body up to its closing quote, resolving `\"` and
/// `\\`. Returns `None` on an unterminated string.
fn unescape_until_quote(s: &str) -> Option<String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Escapes a label for embedding in a JSON string (mirrors the criterion
/// shim's record writer).
fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extracts the `"key": number` field of a single-record JSON object.
fn json_num_field(record: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = record.find(&needle)? + needle.len();
    let rest = &record[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Reads every `BENCH_*.json` record in `dir` into label → per_sec.
fn read_records(dir: &Path) -> Result<BTreeMap<String, f64>, String> {
    let mut records = BTreeMap::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let (Some(label), Some(per_sec)) = (
            json_str_field(&text, "label"),
            json_num_field(&text, "per_sec"),
        ) else {
            return Err(format!("malformed record {}", path.display()));
        };
        records.insert(label, per_sec);
    }
    Ok(records)
}

/// Reads the baseline file: a flat JSON object of label → per_sec.
fn read_baseline(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut baseline = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some(label) = unescape_until_quote(rest) else {
            continue;
        };
        // The raw (escaped) label plus its two quotes precede the colon.
        let after = &rest[rest.len().min(escape(&label).len() + 1)..];
        let Some(value) = after.trim().strip_prefix(':') else {
            continue;
        };
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad baseline value for {label:?}: {e}"))?;
        baseline.insert(label, value);
    }
    if baseline.is_empty() {
        return Err(format!("no entries in baseline {}", path.display()));
    }
    Ok(baseline)
}

fn write_baseline(path: &Path, records: &BTreeMap<String, f64>) -> Result<(), String> {
    let mut text = String::from("{\n");
    let last = records.len().saturating_sub(1);
    for (i, (label, per_sec)) in records.iter().enumerate() {
        text.push_str(&format!("  \"{}\": {per_sec:.3}", escape(label)));
        text.push_str(if i == last { "\n" } else { ",\n" });
    }
    text.push_str("}\n");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("perfgate: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let records = match read_records(&opts.dir) {
        Ok(r) if r.is_empty() => {
            eprintln!(
                "perfgate: no BENCH_*.json records in {} — run the benches with \
                 ULP_BENCH_JSON_DIR={} first",
                opts.dir.display(),
                opts.dir.display()
            );
            return ExitCode::FAILURE;
        }
        Ok(r) => r,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.write_baseline {
        if let Err(e) = write_baseline(&opts.baseline, &records) {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "perfgate: wrote {} entries to {}",
            records.len(),
            opts.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match read_baseline(&opts.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "perfgate: gating {} baseline entries at {:.0}% tolerance",
        baseline.len(),
        opts.tolerance * 100.0
    );
    println!(
        "{:<42} {:>14} {:>14} {:>7}  status",
        "benchmark", "baseline/s", "current/s", "ratio"
    );
    let mut failures = 0;
    for (label, &base) in &baseline {
        match records.get(label) {
            None => {
                println!("{label:<42} {base:>14.0} {:>14} {:>7}  MISSING", "-", "-");
                failures += 1;
            }
            Some(&current) => {
                let ratio = if base > 0.0 { current / base } else { f64::NAN };
                let ok = ratio >= 1.0 - opts.tolerance;
                println!(
                    "{label:<42} {base:>14.0} {current:>14.0} {ratio:>7.2}  {}",
                    if ok { "ok" } else { "REGRESSED" }
                );
                if !ok {
                    failures += 1;
                }
            }
        }
    }
    for label in records.keys().filter(|l| !baseline.contains_key(*l)) {
        println!("{label:<42} (new benchmark, not gated — refresh the baseline)");
    }

    if failures > 0 {
        eprintln!(
            "perfgate: {failures} benchmark(s) regressed more than {:.0}% (or went missing); \
             if intentional, refresh with --write-baseline",
            opts.tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("perfgate: all gated benchmarks within tolerance");
    ExitCode::SUCCESS
}

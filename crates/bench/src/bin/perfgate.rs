//! `perfgate` — the CI performance-regression gate.
//!
//! ```text
//! perfgate [options]
//!   --dir <path>        directory of BENCH_*.json records
//!                       (default: target/bench-json)
//!   --baseline <path>   checked-in baseline (default: ci/bench-baseline.json)
//!   --tolerance <frac>  allowed fractional regression (default: 0.20)
//!   --write-baseline    regenerate the baseline from the records and exit
//! ```
//!
//! The vendored criterion harness writes one `BENCH_<label>.json` record
//! per benchmark when `ULP_BENCH_JSON_DIR` is set (see `vendor/criterion`).
//! Every criterion record carries a `per_sec` rate — simulated cycles per
//! second for `step_throughput`, jobs per second for `service_throughput`
//! — where higher is faster. Records may instead carry a generic `value`
//! plus `"lower_is_better":true` — the `service_latency` bench emits its
//! p50/p95 latency this way — and the gate then fails on *increases*
//! beyond tolerance rather than decreases. A record may also carry its
//! own `"tolerance"` (latency is noisier than throughput), overriding
//! `--tolerance` for that label only. The gate compares each baseline
//! entry against the fresh record and fails (exit 1) if any gated number
//! moved in the slow direction by more than the tolerance, naming the
//! offending record, its baseline, the measured value, the allowed limit
//! and the exact refresh command. Benchmarks present in the records but
//! absent from the baseline are reported but not gated, so adding a bench
//! doesn't require a lockstep baseline update; refresh with
//! `--write-baseline`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: perfgate [options]
  --dir <path>        directory of BENCH_*.json records (default: target/bench-json)
  --baseline <path>   checked-in baseline (default: ci/bench-baseline.json)
  --tolerance <frac>  allowed fractional regression (default: 0.20;
                      a record's own \"tolerance\" field overrides it)
  --write-baseline    regenerate the baseline from the records and exit";

struct Options {
    dir: PathBuf,
    baseline: PathBuf,
    tolerance: f64,
    write_baseline: bool,
}

/// One fresh benchmark record, as read from `BENCH_*.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Record {
    /// The gated number: `value` if the record carries one, else the
    /// criterion shim's `per_sec` rate.
    value: f64,
    /// `true` = the number is a cost (e.g. latency): regressions are
    /// increases. `false` (the default) = a rate: regressions are drops.
    lower_is_better: bool,
    /// Per-record tolerance override; `None` = use `--tolerance`.
    tolerance: Option<f64>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        dir: PathBuf::from("target/bench-json"),
        baseline: PathBuf::from("ci/bench-baseline.json"),
        tolerance: 0.20,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, what: &str| {
        args.next()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => opts.dir = PathBuf::from(next_value(&mut args, "--dir")?),
            "--baseline" => opts.baseline = PathBuf::from(next_value(&mut args, "--baseline")?),
            "--tolerance" => {
                opts.tolerance = next_value(&mut args, "--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad value for --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&opts.tolerance) {
                    return Err(format!("tolerance {} outside [0, 1)", opts.tolerance));
                }
            }
            "--write-baseline" => opts.write_baseline = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Extracts the `"key": "string"` field of a single-record JSON object,
/// honouring `\"` and `\\` escapes in the value.
fn json_str_field(record: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = record.find(&needle)? + needle.len();
    unescape_until_quote(&record[start..])
}

/// Reads a JSON string body up to its closing quote, resolving `\"` and
/// `\\`. Returns `None` on an unterminated string.
fn unescape_until_quote(s: &str) -> Option<String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Escapes a label for embedding in a JSON string (mirrors the criterion
/// shim's record writer).
fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extracts the `"key": number` field of a single-record JSON object.
fn json_num_field(record: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = record.find(&needle)? + needle.len();
    let rest = &record[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts the `"key": true/false` field of a single-record JSON object.
fn json_bool_field(record: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let start = record.find(&needle)? + needle.len();
    let rest = record[start..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Parses one record file's text into `(label, Record)`.
fn parse_record(text: &str) -> Option<(String, Record)> {
    let label = json_str_field(text, "label")?;
    let value = json_num_field(text, "value").or_else(|| json_num_field(text, "per_sec"))?;
    Some((
        label,
        Record {
            value,
            lower_is_better: json_bool_field(text, "lower_is_better").unwrap_or(false),
            tolerance: json_num_field(text, "tolerance"),
        },
    ))
}

/// Whether a fresh measurement is within tolerance of its baseline. For
/// rates (higher is better) the current value may not drop below
/// `base * (1 - tolerance)`; for costs (lower is better) it may not rise
/// above `base * (1 + tolerance)`.
fn within_tolerance(base: f64, current: f64, tolerance: f64, lower_is_better: bool) -> bool {
    if base <= 0.0 {
        return false;
    }
    if lower_is_better {
        current <= base * (1.0 + tolerance)
    } else {
        current >= base * (1.0 - tolerance)
    }
}

/// The boundary value the gate enforces, for the failure report.
fn limit(base: f64, tolerance: f64, lower_is_better: bool) -> f64 {
    if lower_is_better {
        base * (1.0 + tolerance)
    } else {
        base * (1.0 - tolerance)
    }
}

/// Reads every `BENCH_*.json` record in `dir` into label → [`Record`].
fn read_records(dir: &Path) -> Result<BTreeMap<String, Record>, String> {
    let mut records = BTreeMap::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let Some((label, record)) = parse_record(&text) else {
            return Err(format!("malformed record {}", path.display()));
        };
        records.insert(label, record);
    }
    Ok(records)
}

/// Reads the baseline file: a flat JSON object of label → value.
fn read_baseline(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut baseline = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some(label) = unescape_until_quote(rest) else {
            continue;
        };
        // The raw (escaped) label plus its two quotes precede the colon.
        let after = &rest[rest.len().min(escape(&label).len() + 1)..];
        let Some(value) = after.trim().strip_prefix(':') else {
            continue;
        };
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad baseline value for {label:?}: {e}"))?;
        baseline.insert(label, value);
    }
    if baseline.is_empty() {
        return Err(format!("no entries in baseline {}", path.display()));
    }
    Ok(baseline)
}

fn write_baseline(path: &Path, records: &BTreeMap<String, Record>) -> Result<(), String> {
    let mut text = String::from("{\n");
    let last = records.len().saturating_sub(1);
    for (i, (label, record)) in records.iter().enumerate() {
        text.push_str(&format!("  \"{}\": {:.3}", escape(label), record.value));
        text.push_str(if i == last { "\n" } else { ",\n" });
    }
    text.push_str("}\n");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("perfgate: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let records = match read_records(&opts.dir) {
        Ok(r) if r.is_empty() => {
            eprintln!(
                "perfgate: no BENCH_*.json records in {} — run the benches with \
                 ULP_BENCH_JSON_DIR={} first",
                opts.dir.display(),
                opts.dir.display()
            );
            return ExitCode::FAILURE;
        }
        Ok(r) => r,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.write_baseline {
        if let Err(e) = write_baseline(&opts.baseline, &records) {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "perfgate: wrote {} entries to {}",
            records.len(),
            opts.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match read_baseline(&opts.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
    };

    let refresh = format!(
        "cargo run --release --bin perfgate -- --dir {} --baseline {} --write-baseline",
        opts.dir.display(),
        opts.baseline.display()
    );
    println!(
        "perfgate: gating {} baseline entries at {:.0}% default tolerance",
        baseline.len(),
        opts.tolerance * 100.0
    );
    println!(
        "{:<42} {:>14} {:>14} {:>7}  status",
        "benchmark", "baseline", "current", "ratio"
    );
    // Human-readable detail per failing record, printed after the table.
    let mut failures: Vec<String> = Vec::new();
    for (label, &base) in &baseline {
        match records.get(label) {
            None => {
                println!("{label:<42} {base:>14.0} {:>14} {:>7}  MISSING", "-", "-");
                failures.push(format!(
                    "{label}: baseline {base:.3} but no fresh record was measured — \
                     run its bench with ULP_BENCH_JSON_DIR set, or drop the entry \
                     via: {refresh}"
                ));
            }
            Some(record) => {
                let tolerance = record.tolerance.unwrap_or(opts.tolerance);
                let current = record.value;
                let ratio = if base > 0.0 { current / base } else { f64::NAN };
                let ok = within_tolerance(base, current, tolerance, record.lower_is_better);
                println!(
                    "{label:<42} {base:>14.0} {current:>14.0} {ratio:>7.2}  {}",
                    if ok { "ok" } else { "REGRESSED" }
                );
                if !ok {
                    let (direction, side) = if record.lower_is_better {
                        ("lower is better", "above the limit")
                    } else {
                        ("higher is better", "below the limit")
                    };
                    failures.push(format!(
                        "{label}: baseline {base:.3}, measured {current:.3}, limit \
                         {:.3} at {:.0}% tolerance ({direction}, measured value is \
                         {side}) — if this change is intentional, refresh the \
                         baseline via: {refresh}",
                        limit(base, tolerance, record.lower_is_better),
                        tolerance * 100.0,
                    ));
                }
            }
        }
    }
    for label in records.keys().filter(|l| !baseline.contains_key(*l)) {
        println!("{label:<42} (new benchmark, not gated — refresh the baseline)");
    }

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("perfgate: FAIL {failure}");
        }
        eprintln!(
            "perfgate: {} benchmark(s) regressed beyond tolerance (or went missing)",
            failures.len()
        );
        return ExitCode::FAILURE;
    }
    println!("perfgate: all gated benchmarks within tolerance");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Higher-is-better (rates): only drops beyond tolerance fail.
    #[test]
    fn rate_gating_fails_on_drops_only() {
        // 15% drop within 20% tolerance.
        assert!(within_tolerance(1000.0, 850.0, 0.20, false));
        // Exactly at the limit is still ok.
        assert!(within_tolerance(1000.0, 800.0, 0.20, false));
        // 25% drop beyond 20% tolerance.
        assert!(!within_tolerance(1000.0, 750.0, 0.20, false));
        // Getting faster never fails a rate.
        assert!(within_tolerance(1000.0, 5000.0, 0.20, false));
        assert_eq!(limit(1000.0, 0.20, false), 800.0);
    }

    /// Lower-is-better (costs, e.g. latency): the comparison direction
    /// flips — increases beyond tolerance fail, drops never do.
    #[test]
    fn cost_gating_fails_on_increases_only() {
        // 15% increase within 20% tolerance.
        assert!(within_tolerance(1000.0, 1150.0, 0.20, true));
        // Exactly at the limit is still ok.
        assert!(within_tolerance(1000.0, 1200.0, 0.20, true));
        // 25% increase beyond 20% tolerance.
        assert!(!within_tolerance(1000.0, 1250.0, 0.20, true));
        // Getting faster (latency dropping) never fails a cost — even by
        // an amount that would fail a rate.
        assert!(within_tolerance(1000.0, 10.0, 0.20, true));
        assert_eq!(limit(1000.0, 0.20, true), 1200.0);
    }

    /// A non-positive baseline can never pass: the gate has nothing
    /// meaningful to compare against and must flag the entry.
    #[test]
    fn degenerate_baselines_always_fail() {
        assert!(!within_tolerance(0.0, 100.0, 0.20, false));
        assert!(!within_tolerance(0.0, 100.0, 0.20, true));
        assert!(!within_tolerance(-5.0, 100.0, 0.20, true));
    }

    /// Criterion-shim records: `per_sec`, no direction, no tolerance.
    #[test]
    fn parses_throughput_records() {
        let (label, record) = parse_record(
            "{\"label\":\"step_throughput/bare/2\",\"mean_ns\":191.0,\
             \"min_ns\":190.0,\"max_ns\":192.0,\"per_sec\":5212677.231}\n",
        )
        .expect("valid record");
        assert_eq!(label, "step_throughput/bare/2");
        assert_eq!(record.value, 5212677.231);
        assert!(!record.lower_is_better);
        assert_eq!(record.tolerance, None);
    }

    /// Latency-style records: a generic `value` gated downward, with a
    /// per-record tolerance override. `value` wins over `per_sec`.
    #[test]
    fn parses_lower_is_better_records() {
        let (label, record) = parse_record(
            "{\"label\":\"service_latency/p95_us\",\"value\":812.5,\
             \"per_sec\":99.0,\"lower_is_better\":true,\"tolerance\":0.75}\n",
        )
        .expect("valid record");
        assert_eq!(label, "service_latency/p95_us");
        assert_eq!(record.value, 812.5);
        assert!(record.lower_is_better);
        assert_eq!(record.tolerance, Some(0.75));
    }

    #[test]
    fn malformed_records_are_rejected() {
        assert!(parse_record("{\"per_sec\":1.0}").is_none(), "no label");
        assert!(
            parse_record("{\"label\":\"x\",\"lower_is_better\":true}").is_none(),
            "no value"
        );
    }
}

//! Runs the ablation studies A1-A6 of DESIGN.md. Pass one of:
//! im-mapping | policy | cores | voltage | granularity | layout | all
//! (default).

use ulp_bench::ablation;
use ulp_bench::{calibrate, gather};
use ulp_kernels::{Benchmark, WorkloadConfig};

fn usage(studies: &[(&str, &dyn Fn())]) -> String {
    let names: Vec<&str> = studies.iter().map(|(name, _)| *name).collect();
    format!(
        "usage: ablation [{}|all]\nRuns the architecture ablation studies \
         (IM mapping, serving policy, core count, sync granularity, buffer \
         layout, voltage sensitivity; default: all).",
        names.join("|")
    )
}

fn main() {
    let cfg = WorkloadConfig::paper();
    let b = Benchmark::Mrpfltr;
    // The single source of truth: study name -> runner. Usage, validation
    // and dispatch all derive from this table.
    let studies: &[(&str, &dyn Fn())] = &[
        ("im-mapping", &|| {
            println!("{}\n", ablation::im_mapping(b, &cfg))
        }),
        ("policy", &|| println!("{}\n", ablation::policy(b, &cfg))),
        ("cores", &|| println!("{}\n", ablation::cores(b, &cfg))),
        ("granularity", &|| {
            println!("{}\n", ablation::granularity(b, &cfg))
        }),
        ("layout", &|| println!("{}\n", ablation::layout(b, &cfg))),
        ("voltage", &|| {
            eprintln!("gathering activities for the voltage study ...");
            let data = gather(&cfg).expect("benchmark runs valid");
            let model = calibrate(&data);
            let d = data.benchmark(b);
            println!(
                "{}",
                ablation::voltage_sensitivity(&model, &d.act_with, &d.act_without)
            );
        }),
    ];

    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage(studies));
        return;
    }
    if let Some(extra) = std::env::args().nth(2) {
        eprintln!("ablation: unexpected argument {extra:?}");
        eprintln!("{}", usage(studies));
        std::process::exit(2);
    }
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = arg == "all";
    if !all && !studies.iter().any(|(name, _)| *name == arg) {
        eprintln!("ablation: unknown study {arg:?}");
        eprintln!("{}", usage(studies));
        std::process::exit(2);
    }
    for (name, run) in studies {
        if all || *name == arg {
            run();
        }
    }
}

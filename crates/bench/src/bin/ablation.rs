//! Runs the ablation studies A1-A6 of DESIGN.md. Pass one of:
//! im-mapping | policy | cores | voltage | granularity | layout | all
//! (default).

use ulp_bench::ablation;
use ulp_bench::{calibrate, gather};
use ulp_kernels::{Benchmark, WorkloadConfig};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let cfg = WorkloadConfig::paper();
    let b = Benchmark::Mrpfltr;
    let all = arg == "all";
    if all || arg == "im-mapping" {
        println!("{}", ablation::im_mapping(b, &cfg));
        println!();
    }
    if all || arg == "policy" {
        println!("{}", ablation::policy(b, &cfg));
        println!();
    }
    if all || arg == "cores" {
        println!("{}", ablation::cores(b, &cfg));
        println!();
    }
    if all || arg == "granularity" {
        println!("{}", ablation::granularity(b, &cfg));
        println!();
    }
    if all || arg == "layout" {
        println!("{}", ablation::layout(b, &cfg));
        println!();
    }
    if all || arg == "voltage" {
        eprintln!("gathering activities for the voltage study ...");
        let data = gather(&cfg).expect("benchmark runs valid");
        let model = calibrate(&data);
        let d = data.benchmark(b);
        println!(
            "{}",
            ablation::voltage_sensitivity(&model, &d.act_with, &d.act_without)
        );
    }
    if !all
        && !["im-mapping", "policy", "cores", "granularity", "layout", "voltage"]
            .contains(&arg.as_str())
    {
        eprintln!(
            "unknown study {arg:?}; use im-mapping|policy|cores|voltage|granularity|layout|all"
        );
        std::process::exit(2);
    }
}

//! Batched experiment sweeps: run a (benchmark × design × core-count)
//! grid across OS threads.
//!
//! Every grid cell is one deterministic, self-contained simulation, so the
//! sweep distributes cells over a fixed worker pool with a shared atomic
//! cursor. Each worker keeps one [`Platform`] per (design, core-count)
//! pair and reuses it via [`ulp_kernels::run_benchmark_reusing`], so the
//! engine's memories and cycle buffers are allocated once per thread
//! rather than once per run. Results are returned in grid order and are
//! bit-identical to serial execution.
//!
//! ```no_run
//! use ulp_bench::{SweepSpec, run_sweep};
//! use ulp_kernels::WorkloadConfig;
//!
//! let spec = SweepSpec::full_grid(WorkloadConfig::quick_test());
//! let results = run_sweep(&spec).unwrap();
//! for cell in &results.cells {
//!     println!("{}", cell.describe());
//! }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use ulp_kernels::{run_benchmark_reusing, Benchmark, BenchmarkRun, RunnerError, WorkloadConfig};
use ulp_platform::{Platform, PlatformConfig};

/// The grid of a sweep: every combination of benchmark, design and core
/// count is one simulation.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Benchmarks to run.
    pub benchmarks: Vec<Benchmark>,
    /// Designs to run: `true` = with synchronizer (improved), `false` =
    /// baseline.
    pub designs: Vec<bool>,
    /// Core counts to run (1..=8; the kernels assume one private DM bank
    /// per core).
    pub core_counts: Vec<usize>,
    /// Workload shared by every cell.
    pub workload: WorkloadConfig,
    /// Worker threads; `0` = one per available hardware thread.
    pub threads: usize,
}

impl SweepSpec {
    /// The full paper grid on `workload`: all three benchmarks, both
    /// designs, 2/4/8 cores.
    pub fn full_grid(workload: WorkloadConfig) -> SweepSpec {
        SweepSpec {
            benchmarks: Benchmark::ALL.to_vec(),
            designs: vec![true, false],
            core_counts: vec![2, 4, 8],
            workload,
            threads: 0,
        }
    }

    /// The paper's own evaluation grid: all benchmarks, both designs, the
    /// 8-core platform only.
    pub fn paper_grid(workload: WorkloadConfig) -> SweepSpec {
        SweepSpec {
            core_counts: vec![8],
            ..SweepSpec::full_grid(workload)
        }
    }

    /// Number of grid cells.
    pub fn len(&self) -> usize {
        self.benchmarks.len() * self.designs.len() * self.core_counts.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn jobs(&self) -> Vec<(Benchmark, bool, usize)> {
        let mut jobs = Vec::with_capacity(self.len());
        for &benchmark in &self.benchmarks {
            for &with_sync in &self.designs {
                for &cores in &self.core_counts {
                    jobs.push((benchmark, with_sync, cores));
                }
            }
        }
        jobs
    }
}

/// One completed grid cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Core count of this cell's platform.
    pub cores: usize,
    /// The run itself (statistics, outputs, golden expectations).
    pub run: BenchmarkRun,
}

impl SweepCell {
    /// One-line human summary of the cell.
    pub fn describe(&self) -> String {
        format!(
            "{:<7} {:<8} {} cores: {:>9} cycles, {:.2} ops/cycle, width {:.2}",
            self.run.benchmark.name(),
            if self.run.with_sync {
                "sync"
            } else {
                "baseline"
            },
            self.cores,
            self.run.stats.cycles,
            self.run.stats.ops_per_cycle(),
            self.run.stats.avg_lockstep_width(),
        )
    }
}

/// Everything a finished sweep produced.
#[derive(Debug)]
pub struct SweepResults {
    /// Completed cells, in grid order (benchmark-major, then design, then
    /// core count) regardless of which thread ran them.
    pub cells: Vec<SweepCell>,
    /// Worker threads used.
    pub threads_used: usize,
    /// Platforms constructed across all workers (the rest were reuses).
    pub platforms_built: usize,
}

impl SweepResults {
    /// The cell for an exact (benchmark, design, cores) coordinate.
    pub fn cell(&self, benchmark: Benchmark, with_sync: bool, cores: usize) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.run.benchmark == benchmark && c.run.with_sync == with_sync && c.cores == cores
        })
    }

    /// Cycle-count speed-up of the improved design over the baseline at
    /// one (benchmark, cores) coordinate, when both designs were swept.
    pub fn speedup(&self, benchmark: Benchmark, cores: usize) -> Option<f64> {
        let with = self.cell(benchmark, true, cores)?;
        let without = self.cell(benchmark, false, cores)?;
        Some(without.run.stats.cycles as f64 / with.run.stats.cycles as f64)
    }
}

/// Runs every cell of `spec` across OS threads and returns the cells in
/// grid order. Simulations are deterministic and independent, so the
/// result is bit-identical to running the grid serially.
///
/// # Errors
///
/// The first [`RunnerError`] in grid order; remaining cells still run to
/// completion.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResults, RunnerError> {
    let jobs = spec.jobs();
    let threads = if spec.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        spec.threads
    }
    .min(jobs.len())
    .max(1);

    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<SweepCell, RunnerError>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let platforms_built = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // One platform per (design, core-count), reused across
                // benchmarks: the dominant allocations (memories, cycle
                // buffers) happen once per worker.
                let mut cache: HashMap<(bool, usize), Platform> = HashMap::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(benchmark, with_sync, cores)) = jobs.get(index) else {
                        break;
                    };
                    let result = platform_for(
                        &mut cache,
                        with_sync,
                        cores,
                        &spec.workload,
                        &platforms_built,
                    )
                    .and_then(|platform| run_benchmark_reusing(benchmark, platform, &spec.workload))
                    .map(|run| SweepCell { cores, run });
                    slots.lock().expect("no poisoned sweeps")[index] = Some(result);
                }
            });
        }
    });

    let mut cells = Vec::with_capacity(jobs.len());
    for slot in slots.into_inner().expect("no poisoned sweeps") {
        cells.push(slot.expect("every job ran")?);
    }
    Ok(SweepResults {
        cells,
        threads_used: threads,
        platforms_built: platforms_built.load(Ordering::Relaxed),
    })
}

fn platform_for<'a>(
    cache: &'a mut HashMap<(bool, usize), Platform>,
    with_sync: bool,
    cores: usize,
    workload: &WorkloadConfig,
    built: &AtomicUsize,
) -> Result<&'a mut Platform, RunnerError> {
    use std::collections::hash_map::Entry;
    match cache.entry((with_sync, cores)) {
        Entry::Occupied(e) => Ok(e.into_mut()),
        Entry::Vacant(e) => {
            let cfg = PlatformConfig::paper(with_sync)
                .with_cores(cores)
                .with_max_cycles(workload.max_cycles);
            let platform = Platform::new(cfg)?;
            built.fetch_add(1, Ordering::Relaxed);
            Ok(e.insert(platform))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_kernels::run_benchmark_on;

    fn quick_spec() -> SweepSpec {
        SweepSpec {
            benchmarks: vec![Benchmark::Sqrt32, Benchmark::Mrpfltr],
            designs: vec![true, false],
            core_counts: vec![2, 4],
            workload: WorkloadConfig::quick_test(),
            threads: 0,
        }
    }

    #[test]
    fn sweep_matches_serial_execution_bit_exactly() {
        let spec = quick_spec();
        let results = run_sweep(&spec).expect("sweep runs");
        assert_eq!(results.cells.len(), spec.len());
        for cell in &results.cells {
            cell.run.verify().expect("outputs match golden model");
            let serial = run_benchmark_on(
                cell.run.benchmark,
                PlatformConfig::paper(cell.run.with_sync)
                    .with_cores(cell.cores)
                    .with_max_cycles(spec.workload.max_cycles),
                &spec.workload,
            )
            .expect("serial run");
            assert_eq!(cell.run.stats, serial.stats, "{}", cell.describe());
            assert_eq!(cell.run.outputs, serial.outputs);
        }
    }

    #[test]
    fn sweep_cells_come_back_in_grid_order() {
        let spec = quick_spec();
        let results = run_sweep(&spec).expect("sweep runs");
        let coords: Vec<(Benchmark, bool, usize)> = results
            .cells
            .iter()
            .map(|c| (c.run.benchmark, c.run.with_sync, c.cores))
            .collect();
        assert_eq!(coords, spec.jobs());
        assert!(results.threads_used >= 1);
        assert!(results.platforms_built >= 1);
    }

    #[test]
    fn speedup_is_positive_where_both_designs_ran() {
        let mut spec = quick_spec();
        spec.benchmarks = vec![Benchmark::Sqrt32];
        spec.core_counts = vec![8];
        let results = run_sweep(&spec).expect("sweep runs");
        let speedup = results.speedup(Benchmark::Sqrt32, 8).expect("both designs");
        assert!(speedup > 1.0, "sync design must win: {speedup}");
        assert!(results.speedup(Benchmark::Mrpdln, 8).is_none());
    }

    #[test]
    fn single_threaded_sweep_works() {
        let mut spec = quick_spec();
        spec.threads = 1;
        spec.benchmarks = vec![Benchmark::Sqrt32];
        let results = run_sweep(&spec).expect("sweep runs");
        assert_eq!(results.threads_used, 1);
        assert_eq!(results.cells.len(), 4);
        // One worker, two designs x two core counts: four platforms, each
        // reused nowhere in this tiny grid but cached per coordinate.
        assert_eq!(results.platforms_built, 4);
    }
}

//! Batched experiment sweeps: run a (benchmark × design × core-count)
//! grid through the batch simulation service.
//!
//! Every grid cell is one deterministic, self-contained simulation, so the
//! sweep is a thin client of [`ulp_service::SimService`]: the grid becomes
//! a batch of [`ulp_service::JobSpec`]s, the service's work-stealing pool
//! executes them over per-worker platform caches, and completed cells
//! stream back incrementally — [`run_sweep_with`] reports each one through
//! a progress callback the moment it lands, while [`run_sweep`] just
//! gathers them. Results are returned in grid order and are bit-identical
//! to serial execution.
//!
//! ```no_run
//! use ulp_bench::{SweepSpec, run_sweep_with};
//! use ulp_kernels::WorkloadConfig;
//!
//! let spec = SweepSpec::full_grid(WorkloadConfig::quick_test());
//! let results = run_sweep_with(&spec, |cell, progress| {
//!     println!("[{}/{}] {}", progress.completed, progress.total, cell.describe());
//! })
//! .unwrap();
//! assert_eq!(results.cells.len(), spec.len());
//! ```

use std::sync::Arc;
use ulp_kernels::{Benchmark, BenchmarkRun, RunnerError, WorkloadConfig};
use ulp_platform::ExecTier;
use ulp_power::{Activity, PowerModel};
use ulp_service::{
    JobError, JobOutput, JobSpec, ObserverSelection, ServiceConfig, ServiceStats, SimService,
    TenantId,
};
use ulp_shard::{MergedArtifacts, ShardPlan, ShardRunConfig, ShardRunner, ShardedRun};
use ulp_telemetry::{EventKind, Telemetry, CLIENT_TRACK};

/// The paper's Table I workload in MOps/s — what every cell's
/// [`SweepCell::energy_uj`] is priced at.
pub const PAPER_WORKLOAD_MOPS: f64 = 8.0;

/// The grid of a sweep: every combination of benchmark, design, core
/// count and shard size is one simulation (a sharded cell is one *logical*
/// simulation fanned out over several service jobs and merged).
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Benchmarks to run.
    pub benchmarks: Vec<Benchmark>,
    /// Designs to run: `true` = with synchronizer (improved), `false` =
    /// baseline.
    pub designs: Vec<bool>,
    /// Core counts to run (1..=8; the kernels assume one private DM bank
    /// per core).
    pub core_counts: Vec<usize>,
    /// Shard axis: `None` = run the workload as a single window (it must
    /// then fit the platform buffers); `Some(s)` = split the workload's
    /// recording into ≤ `s`-sample shards with the benchmark's required
    /// halo ([`ulp_shard::required_halo`]), run them as independent jobs
    /// and merge — so grids can sweep shard size × cores.
    pub shard_samples: Vec<Option<usize>>,
    /// Workload shared by every cell.
    pub workload: WorkloadConfig,
    /// Instrumentation attached to every cell's jobs. Sharded cells
    /// attach it to every shard job and the merge re-indexes the
    /// artifacts onto the recording's global axes; unsharded cells lift
    /// their single job's artifacts into the same
    /// [`MergedArtifacts`] representation — either way
    /// [`SweepCell::artifacts`] carries the result.
    pub observers: ObserverSelection,
    /// Execution tier of every cell's platform runs (the interpreter by
    /// default; the compiled tier produces bit-identical cells faster).
    pub exec_tier: ExecTier,
    /// Worker threads; `0` = one per available hardware thread.
    pub threads: usize,
    /// Bound on the service's queued backlog; `0` = auto (four jobs per
    /// worker). The sweep submits through the service's *blocking*
    /// bounded path, so a huge grid throttles to the workers' claim rate
    /// instead of materializing its whole job list as queued backlog.
    pub queue_capacity: usize,
    /// Tenant every job of the sweep is submitted as — the grid's owner
    /// when several sweeps share one pool, and the identity the service's
    /// per-tenant latency rows are keyed by.
    pub tenant: TenantId,
    /// Telemetry sink the sweep's private service pool records into
    /// (disabled by default — every hook is then a single branch). Pass
    /// an enabled handle and keep a clone: the sweep adds client-side
    /// merge/stream events per job and the pool records the full
    /// lifecycle, exportable via [`Telemetry::chrome_trace`] /
    /// [`Telemetry::snapshot_json`] during or after the run.
    pub telemetry: Telemetry,
    /// Checkpoint cadence in simulated cycles: `Some(n)` makes every
    /// cell's jobs migratable ([`ulp_service::JobSpec::checkpoint_every`]) —
    /// each job snapshots its platform every `n` cycles, so urgent work
    /// can preempt long cells at a checkpoint and a lost worker's
    /// in-flight job resumes on a survivor, with bit-identical results
    /// either way. `None` (the default) runs without checkpoints.
    pub checkpoint_every: Option<u64>,
    /// Directory the sweep's service pool persists checkpoint blobs into
    /// ([`ulp_service::ServiceConfig::checkpoint_dir`]; best-effort,
    /// latest-wins per job). `None` (the default) persists nothing.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl SweepSpec {
    /// The full paper grid on `workload`: all three benchmarks, both
    /// designs, 2/4/8 cores, unsharded.
    pub fn full_grid(workload: WorkloadConfig) -> SweepSpec {
        SweepSpec {
            benchmarks: Benchmark::ALL.to_vec(),
            designs: vec![true, false],
            core_counts: vec![2, 4, 8],
            shard_samples: vec![None],
            workload,
            observers: ObserverSelection::None,
            exec_tier: ExecTier::Interpreted,
            threads: 0,
            queue_capacity: 0,
            tenant: TenantId::DEFAULT,
            telemetry: Telemetry::disabled(),
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }

    /// The paper's own evaluation grid: all benchmarks, both designs, the
    /// 8-core platform only.
    pub fn paper_grid(workload: WorkloadConfig) -> SweepSpec {
        SweepSpec {
            core_counts: vec![8],
            ..SweepSpec::full_grid(workload)
        }
    }

    /// Number of grid cells.
    pub fn len(&self) -> usize {
        self.benchmarks.len()
            * self.designs.len()
            * self.core_counts.len()
            * self.shard_samples.len()
    }

    /// Whether the grid is empty — any empty axis empties the whole grid,
    /// and [`run_sweep`] on an empty grid returns immediately without
    /// starting the service.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn cells(&self) -> Vec<(Benchmark, bool, usize, Option<usize>)> {
        let mut cells = Vec::with_capacity(self.len());
        for &benchmark in &self.benchmarks {
            for &with_sync in &self.designs {
                for &cores in &self.core_counts {
                    for &shard in &self.shard_samples {
                        cells.push((benchmark, with_sync, cores, shard));
                    }
                }
            }
        }
        cells
    }
}

/// One completed grid cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Core count of this cell's platform.
    pub cores: usize,
    /// Samples per shard when the cell ran sharded; `None` for a single
    /// window. Sharded cells carry merged statistics/outputs and
    /// *full-recording* golden expectations, so `run.verify()` doubles as
    /// the sharded-versus-golden equivalence check.
    pub shard_samples: Option<usize>,
    /// The run itself (statistics, outputs, golden expectations).
    pub run: BenchmarkRun,
    /// Observer output of the cell, per the spec's
    /// [`SweepSpec::observers`]: merged across shards for a sharded cell,
    /// the single job's artifacts lifted to the same representation
    /// otherwise.
    pub artifacts: MergedArtifacts,
    /// Energy to process the cell's recording at the paper's Table I
    /// workload ([`PAPER_WORKLOAD_MOPS`]), in microjoules; `None` when
    /// that workload exceeds the design's feasible range.
    pub energy_uj: Option<f64>,
}

impl SweepCell {
    /// One-line human summary of the cell.
    pub fn describe(&self) -> String {
        let shard = match self.shard_samples {
            Some(s) => format!(", {s}-sample shards"),
            None => String::new(),
        };
        format!(
            "{:<7} {:<8} {} cores: {:>9} cycles, {:.2} ops/cycle, width {:.2}{}",
            self.run.benchmark.name(),
            if self.run.with_sync {
                "sync"
            } else {
                "baseline"
            },
            self.cores,
            self.run.stats.cycles,
            self.run.stats.ops_per_cycle(),
            self.run.stats.avg_lockstep_width(),
            shard,
        )
    }
}

/// Incremental completion info handed to the [`run_sweep_with`] callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// Successfully completed cells so far, this one included — counts
    /// gaplessly from 1 and reaches `total` exactly when every cell of
    /// the grid succeeded (errored cells are not streamed; the sweep
    /// returns their error instead).
    pub completed: usize,
    /// Total cells in the grid.
    pub total: usize,
    /// Grid-order index of the completed cell (cells complete out of
    /// order; this is where it belongs).
    pub index: usize,
}

/// Everything a finished sweep produced.
#[derive(Debug)]
pub struct SweepResults {
    /// Completed cells, in grid order (benchmark-major, then design, then
    /// core count) regardless of which worker ran them.
    pub cells: Vec<SweepCell>,
    /// Worker threads used.
    pub threads_used: usize,
    /// Platforms constructed across all workers (the rest were reuses).
    pub platforms_built: usize,
    /// Scheduling statistics of the service run that executed the grid.
    pub service: ServiceStats,
}

impl SweepResults {
    /// The first cell (in grid order) at a (benchmark, design, cores)
    /// coordinate; with a multi-valued shard axis this is the cell for
    /// the first shard size — use [`SweepResults::cell_sharded`] for an
    /// exact four-axis lookup.
    pub fn cell(&self, benchmark: Benchmark, with_sync: bool, cores: usize) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.run.benchmark == benchmark && c.run.with_sync == with_sync && c.cores == cores
        })
    }

    /// The cell for an exact (benchmark, design, cores, shard) coordinate.
    pub fn cell_sharded(
        &self,
        benchmark: Benchmark,
        with_sync: bool,
        cores: usize,
        shard_samples: Option<usize>,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.run.benchmark == benchmark
                && c.run.with_sync == with_sync
                && c.cores == cores
                && c.shard_samples == shard_samples
        })
    }

    /// Cycle-count speed-up of the improved design over the baseline at
    /// one (benchmark, cores) coordinate, when both designs were swept.
    pub fn speedup(&self, benchmark: Benchmark, cores: usize) -> Option<f64> {
        let with = self.cell(benchmark, true, cores)?;
        let without = self.cell(benchmark, false, cores)?;
        Some(without.run.stats.cycles as f64 / with.run.stats.cycles as f64)
    }
}

/// Runs every cell of `spec` through the simulation service and returns
/// the cells in grid order. Simulations are deterministic and independent,
/// so the result is bit-identical to running the grid serially.
///
/// # Errors
///
/// The first [`RunnerError`] in grid order; remaining cells still run to
/// completion.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResults, RunnerError> {
    run_sweep_with(spec, |_, _| {})
}

/// How one grid cell executes: a single job, or a fan-out of shard jobs
/// merged on completion.
enum CellPlan {
    Single,
    // Boxed: a runner carries a whole workload + plan, a single cell
    // nothing — don't pay the large variant for every cell.
    Sharded(Box<ShardRunner>),
}

/// In-flight state of one cell: the outputs of its jobs (one for a single
/// cell, one per shard for a sharded one) and the first error it hit.
struct CellState {
    outputs: Vec<Option<JobOutput>>,
    remaining: usize,
    error: Option<RunnerError>,
}

/// [`run_sweep`] with streaming: `on_cell` is invoked for every completed
/// cell the moment the service delivers it (in completion order, which is
/// not grid order), before the sweep as a whole finishes — a sharded cell
/// completes when its last shard lands and is merged. The aggregate
/// [`SweepResults`] is identical to [`run_sweep`]'s.
///
/// An empty grid returns immediately — no service, no worker threads.
///
/// # Errors
///
/// See [`run_sweep`].
///
/// # Panics
///
/// Panics if a shard-axis entry yields no valid plan for the workload
/// (e.g. shard + required halo beyond the platform buffer capacity) —
/// invalid geometry is a caller bug, like an out-of-range workload size.
pub fn run_sweep_with(
    spec: &SweepSpec,
    mut on_cell: impl FnMut(&SweepCell, SweepProgress),
) -> Result<SweepResults, RunnerError> {
    let coords = spec.cells();
    if coords.is_empty() {
        return Ok(SweepResults {
            cells: Vec::new(),
            threads_used: 0,
            platforms_built: 0,
            service: ServiceStats::default(),
        });
    }

    // Expand cells into concrete service jobs: sharded cells fan out into
    // one job per shard. `job_map[job_id] = (cell index, slot in cell)`.
    let workload = Arc::new(spec.workload.clone());
    let mut plans = Vec::with_capacity(coords.len());
    let mut states = Vec::with_capacity(coords.len());
    let mut specs: Vec<JobSpec> = Vec::new();
    let mut job_map: Vec<(usize, usize)> = Vec::new();
    // Telemetry tags of every cell's jobs — (job id, priority index) —
    // so the client-side merge/stream events recorded at cell
    // finalization carry the same tags as the job's lifecycle events.
    let mut cell_job_tags: Vec<Vec<(u64, u8)>> = Vec::with_capacity(coords.len());
    let tier_code = matches!(spec.exec_tier, ExecTier::Compiled) as u8;
    let client_track = spec.telemetry.track(CLIENT_TRACK);
    for (cell_idx, &(benchmark, with_sync, cores, shard)) in coords.iter().enumerate() {
        let (plan, jobs) = match shard {
            None => {
                let job = JobSpec::new(benchmark, cores, workload.clone())
                    .with_sync(with_sync)
                    .observers(spec.observers.clone())
                    .exec_tier(spec.exec_tier)
                    .tenant(spec.tenant);
                let job = match spec.checkpoint_every {
                    Some(cycles) => job.checkpoint_every(cycles),
                    None => job,
                };
                (CellPlan::Single, vec![job])
            }
            Some(samples) => {
                let plan = ShardPlan::for_workload(benchmark, &spec.workload, samples)
                    .unwrap_or_else(|e| {
                        panic!("invalid shard axis entry {samples} for {benchmark}: {e}")
                    });
                let mut config =
                    ShardRunConfig::new(benchmark, with_sync, cores, spec.workload.clone())
                        .with_observers(spec.observers.clone())
                        .with_exec_tier(spec.exec_tier)
                        .with_tenant(spec.tenant);
                if let Some(cycles) = spec.checkpoint_every {
                    config = config.with_checkpoint_every(cycles);
                }
                let runner = ShardRunner::new(config, plan)
                    .expect("plan covers the workload by construction");
                let jobs = runner.job_specs();
                (CellPlan::Sharded(Box::new(runner)), jobs)
            }
        };
        states.push(CellState {
            outputs: (0..jobs.len()).map(|_| None).collect(),
            remaining: jobs.len(),
            error: None,
        });
        let mut tags = Vec::with_capacity(jobs.len());
        for (slot, job) in jobs.into_iter().enumerate() {
            job_map.push((cell_idx, slot));
            tags.push((specs.len() as u64, job.priority.index() as u8));
            specs.push(job);
        }
        cell_job_tags.push(tags);
        plans.push(plan);
    }

    // Resolve exactly like the service would, then cap at the job count —
    // a pool larger than the batch would only park the surplus workers.
    let workers = ServiceConfig::builder()
        .workers(spec.threads)
        .build()
        .resolved_workers()
        .min(specs.len())
        .max(1);
    // Submit through the bounded path: the blocking `submit` below parks
    // this thread whenever the backlog hits capacity, so the grid is fed
    // at the workers' claim rate. Shard jobs run at elevated priority
    // (see `ShardRunner::job_specs`), so a sharded cell's merge is never
    // starved behind normal-priority single cells.
    let capacity = if spec.queue_capacity == 0 {
        workers * 4
    } else {
        spec.queue_capacity
    };
    let mut builder = ServiceConfig::builder()
        .workers(workers)
        .queue_capacity(capacity)
        .telemetry(spec.telemetry.clone());
    if let Some(dir) = &spec.checkpoint_dir {
        builder = builder.checkpoint_dir(dir.clone());
    }
    let mut service = SimService::start(builder.build());

    let total = coords.len();
    let mut cells: Vec<Option<Result<SweepCell, RunnerError>>> = (0..total).map(|_| None).collect();
    let mut completed = 0;
    // Full-recording golden passes for sharded cells, computed once per
    // (benchmark, cores): cells along the shard and design axes share
    // them, and the golden depends on neither.
    let mut goldens: std::collections::HashMap<(Benchmark, usize), Vec<Vec<u16>>> =
        std::collections::HashMap::new();
    // Every cell is priced by the same calibrated model at the paper's
    // Table I workload.
    let model = PowerModel::calibrated_default();
    // One completed job landing — shared by the drain during submission
    // and the final drain, so cells stream (and the callback fires) while
    // the blocking bounded submission is still feeding the grid, not in a
    // burst after it.
    let mut handle = |result: ulp_service::JobResult| {
        let (cell_idx, slot) = job_map[result.id as usize];
        let state = &mut states[cell_idx];
        match result.outcome {
            Ok(out) => state.outputs[slot] = Some(out),
            // Keep the first error per cell; remaining shards still run.
            // Sweep jobs carry no deadline, so eviction cannot occur.
            Err(JobError::Run(e)) => {
                state.error.get_or_insert(e);
            }
            Err(JobError::Evicted { .. }) => {
                unreachable!("sweep jobs are submitted without deadlines")
            }
        }
        state.remaining -= 1;
        if state.remaining > 0 {
            return;
        }
        // The cell's last job landed: finalize it.
        let (_, _, cores, shard) = coords[cell_idx];
        let cell = if let Some(error) = state.error.take() {
            Err(error)
        } else {
            let outputs: Vec<JobOutput> = state
                .outputs
                .iter_mut()
                .map(|o| o.take().expect("slot filled"))
                .collect();
            Ok(match &plans[cell_idx] {
                CellPlan::Single => {
                    let out = outputs.into_iter().next().expect("one job per single cell");
                    let activity = Activity::from_stats(&out.run.stats);
                    let energy_uj = model.energy_for_ops_uj(
                        &activity,
                        PAPER_WORKLOAD_MOPS,
                        out.run.stats.useful_ops(),
                    );
                    let artifacts = MergedArtifacts::from_single(
                        out.artifacts,
                        &spec.observers,
                        out.run.stats.cycles,
                    );
                    SweepCell {
                        cores: out.cores,
                        shard_samples: None,
                        run: out.run,
                        artifacts,
                        energy_uj,
                    }
                }
                CellPlan::Sharded(runner) => {
                    let sharded = ShardedRun {
                        config: runner.config().clone(),
                        plan: runner.plan().clone(),
                        shards: runner
                            .plan()
                            .shards()
                            .iter()
                            .zip(outputs)
                            .map(|(&s, out)| ulp_shard::ShardOutput {
                                shard: s,
                                run: out.run,
                                artifacts: out.artifacts,
                            })
                            .collect(),
                    };
                    let benchmark = sharded.config.benchmark;
                    let expected = goldens
                        .entry((benchmark, cores))
                        .or_insert_with(|| {
                            ulp_kernels::golden_outputs(benchmark, &spec.workload, cores)
                        })
                        .clone();
                    // The sweep built the shards in plan order itself, so a
                    // merge failure is an internal invariant break, not input.
                    let merged = ulp_shard::merge_with_golden(&sharded, expected)
                        .expect("sweep-built shards are plan-ordered and well-shaped");
                    let energy_uj = merged.energy_uj(&model, PAPER_WORKLOAD_MOPS);
                    SweepCell {
                        cores,
                        shard_samples: shard,
                        run: merged.run,
                        artifacts: merged.artifacts,
                        energy_uj,
                    }
                }
            })
        };
        if let Ok(cell) = &cell {
            // The cell's jobs merged into one result: record the
            // client-side lifecycle tail (merge, then — once the
            // callback has seen it — stream) for every job of the cell.
            if client_track.is_enabled() {
                for &(id, priority) in &cell_job_tags[cell_idx] {
                    client_track.record(EventKind::Merged, id, spec.tenant.0, priority, tier_code);
                }
            }
            // Errored cells are not streamed (the sweep as a whole
            // returns their error), so `completed` counts exactly the
            // cells the callback sees: it reaches `total` iff every cell
            // succeeded, with no gaps in between.
            completed += 1;
            on_cell(
                cell,
                SweepProgress {
                    completed,
                    total,
                    index: cell_idx,
                },
            );
            if client_track.is_enabled() {
                for &(id, priority) in &cell_job_tags[cell_idx] {
                    client_track.record(
                        EventKind::Streamed,
                        id,
                        spec.tenant.0,
                        priority,
                        tier_code,
                    );
                }
            }
        }
        cells[cell_idx] = Some(cell);
    };

    for job in specs {
        // Job ids are assigned in submission order, so id indexes job_map.
        service
            .submit_blocking(job)
            .expect("the sweep's private pool outlives its own submissions");
        // Drain whatever finished so far: keeps the callback streaming
        // during the (now backpressure-throttled, sweep-long) submission
        // phase and the result channel shallow.
        while let Some(result) = service.try_recv() {
            handle(result);
        }
        // Sweep-long runs must not overflow the bounded event rings:
        // fold them into the collected store as the grid is fed (a
        // single branch when telemetry is disabled).
        spec.telemetry.collect();
    }
    while let Some(result) = service.recv() {
        handle(result);
    }
    let stats = service.finish();

    let mut out = Vec::with_capacity(total);
    for slot in cells {
        out.push(slot.expect("every cell ran")?);
    }
    Ok(SweepResults {
        cells: out,
        threads_used: stats.workers,
        platforms_built: stats.platforms_built as usize,
        service: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_kernels::run_benchmark_on;
    use ulp_platform::PlatformConfig;

    fn quick_spec() -> SweepSpec {
        SweepSpec {
            benchmarks: vec![Benchmark::Sqrt32, Benchmark::Mrpfltr],
            designs: vec![true, false],
            core_counts: vec![2, 4],
            shard_samples: vec![None],
            workload: WorkloadConfig::quick_test(),
            observers: ObserverSelection::None,
            exec_tier: ExecTier::Interpreted,
            threads: 0,
            queue_capacity: 0,
            tenant: TenantId::DEFAULT,
            telemetry: Telemetry::disabled(),
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }

    #[test]
    fn sweep_matches_serial_execution_bit_exactly() {
        let spec = quick_spec();
        let results = run_sweep(&spec).expect("sweep runs");
        assert_eq!(results.cells.len(), spec.len());
        for cell in &results.cells {
            cell.run.verify().expect("outputs match golden model");
            let serial = run_benchmark_on(
                cell.run.benchmark,
                PlatformConfig::paper(cell.run.with_sync)
                    .with_cores(cell.cores)
                    .with_max_cycles(spec.workload.max_cycles),
                &spec.workload,
            )
            .expect("serial run");
            assert_eq!(cell.run.stats, serial.stats, "{}", cell.describe());
            assert_eq!(cell.run.outputs, serial.outputs);
        }
    }

    #[test]
    fn sweep_cells_come_back_in_grid_order() {
        let spec = quick_spec();
        let results = run_sweep(&spec).expect("sweep runs");
        let coords: Vec<(Benchmark, bool, usize, Option<usize>)> = results
            .cells
            .iter()
            .map(|c| (c.run.benchmark, c.run.with_sync, c.cores, c.shard_samples))
            .collect();
        assert_eq!(coords, spec.cells());
        assert!(results.threads_used >= 1);
        assert!(results.platforms_built >= 1);
        assert_eq!(results.service.jobs_run as usize, spec.len());
        assert_eq!(results.service.workers, results.threads_used);
    }

    #[test]
    fn sharded_cells_sweep_shard_size_by_cores_and_verify() {
        // A 600-sample recording (beyond MAX_N) swept over two shard
        // sizes × two core counts: every merged cell must match its
        // full-recording golden pass, and cycles must exceed any single
        // shard's (several shards were really merged).
        let spec = SweepSpec {
            benchmarks: vec![Benchmark::Mrpdln],
            designs: vec![true],
            core_counts: vec![2, 4],
            shard_samples: vec![Some(150), Some(288)],
            workload: WorkloadConfig {
                n: 600,
                ..WorkloadConfig::quick_test()
            },
            observers: ObserverSelection::None,
            exec_tier: ExecTier::Interpreted,
            threads: 0,
            // A deliberately tiny bound: shard jobs must flow through a
            // saturated bounded queue and still merge bit-exactly.
            queue_capacity: 2,
            tenant: TenantId::DEFAULT,
            telemetry: Telemetry::disabled(),
            checkpoint_every: None,
            checkpoint_dir: None,
        };
        let results = run_sweep(&spec).expect("sharded sweep runs");
        assert_eq!(results.cells.len(), 4);
        for cell in &results.cells {
            assert!(cell.shard_samples.is_some());
            // verify() compares the stitched outputs against the
            // *full-recording* golden model — the equivalence claim.
            cell.run
                .verify()
                .unwrap_or_else(|e| panic!("{}: {e}", cell.describe()));
            assert_eq!(cell.run.outputs[0].len(), 600);
            assert!(cell.describe().contains("-sample shards"));
        }
        // Exact four-axis lookup distinguishes the shard sizes.
        let small = results
            .cell_sharded(Benchmark::Mrpdln, true, 2, Some(150))
            .unwrap();
        let large = results
            .cell_sharded(Benchmark::Mrpdln, true, 2, Some(288))
            .unwrap();
        assert_ne!(small.run.stats.cycles, large.run.stats.cycles);
        // More shards → more total halo work at equal recording length.
        assert!(small.run.stats.useful_ops() > large.run.stats.useful_ops());
    }

    #[test]
    fn mixed_shard_axis_runs_sharded_and_unsharded_cells_together() {
        let spec = SweepSpec {
            benchmarks: vec![Benchmark::Sqrt32],
            designs: vec![true],
            core_counts: vec![2],
            shard_samples: vec![None, Some(24)],
            workload: WorkloadConfig::quick_test(), // n = 48 fits unsharded
            observers: ObserverSelection::None,
            exec_tier: ExecTier::Interpreted,
            threads: 2,
            queue_capacity: 0,
            tenant: TenantId::DEFAULT,
            telemetry: Telemetry::disabled(),
            checkpoint_every: None,
            checkpoint_dir: None,
        };
        let results = run_sweep(&spec).expect("mixed sweep runs");
        assert_eq!(results.cells.len(), 2);
        let single = &results.cells[0];
        let sharded = &results.cells[1];
        assert_eq!(single.shard_samples, None);
        assert_eq!(sharded.shard_samples, Some(24));
        single.run.verify().unwrap();
        sharded.run.verify().unwrap();
        // SQRT32 is point-wise (zero halo): the sharded outputs equal the
        // single-window outputs exactly.
        assert_eq!(single.run.outputs, sharded.run.outputs);
        // Two shards were simulated: per-cell job accounting shows up in
        // the service stats (1 single + 2 shard jobs).
        assert_eq!(results.service.jobs_run, 3);
        // No observers were selected: the artifact slots are explicit
        // `None`s, not dropped fields.
        assert!(matches!(single.artifacts, MergedArtifacts::None));
        assert!(matches!(sharded.artifacts, MergedArtifacts::None));
    }

    /// The artifact-drop regression: with observers selected, *both* the
    /// unsharded and the sharded cell of a mixed grid must carry their
    /// heat map and energy through the sweep — the sharded one merged
    /// onto the recording's global cycle axis.
    #[test]
    fn observer_sweep_carries_artifacts_and_energy_on_every_cell() {
        let spec = SweepSpec {
            benchmarks: vec![Benchmark::Sqrt32],
            designs: vec![true],
            core_counts: vec![2],
            shard_samples: vec![None, Some(24)],
            workload: WorkloadConfig::quick_test(), // n = 48 fits unsharded
            observers: ObserverSelection::BankHeatMap { window: 256 },
            exec_tier: ExecTier::Interpreted,
            threads: 2,
            queue_capacity: 0,
            tenant: TenantId(3),
            telemetry: Telemetry::disabled(),
            checkpoint_every: None,
            checkpoint_dir: None,
        };
        let mut streamed = 0;
        let results = run_sweep_with(&spec, |cell, _| {
            // Artifacts are present already at streaming time, not only
            // in the gathered aggregate.
            assert!(cell.artifacts.bank_heat_map().is_some(), "streamed cell");
            streamed += 1;
        })
        .expect("observer sweep runs");
        assert_eq!(streamed, 2);

        let single = &results.cells[0];
        let sharded = &results.cells[1];
        for cell in [single, sharded] {
            let map = cell.artifacts.bank_heat_map().expect("a heat map");
            assert!(map.banks() > 0);
            assert!(map.totals().iter().sum::<u64>() > 0, "the kernel hits DM");
            // Rows tile the cell's cycle axis gaplessly.
            let mut cursor = 0;
            for row in &map.rows {
                assert_eq!(row.start_cycle, cursor);
                cursor = row.end_cycle;
            }
            assert_eq!(cursor, cell.run.stats.cycles);
            let energy = cell.energy_uj.expect("8 MOps/s is feasible with sync");
            assert!(energy > 0.0);
        }
        // The sharded map spans both shards.
        let map = sharded.artifacts.bank_heat_map().unwrap();
        let shards: std::collections::HashSet<usize> = map.rows.iter().map(|r| r.shard).collect();
        assert_eq!(shards.len(), 2, "rows from both shards survive the merge");
    }

    #[test]
    fn speedup_is_positive_where_both_designs_ran() {
        let mut spec = quick_spec();
        spec.benchmarks = vec![Benchmark::Sqrt32];
        spec.core_counts = vec![8];
        let results = run_sweep(&spec).expect("sweep runs");
        let speedup = results.speedup(Benchmark::Sqrt32, 8).expect("both designs");
        assert!(speedup > 1.0, "sync design must win: {speedup}");
        assert!(results.speedup(Benchmark::Mrpdln, 8).is_none());
    }

    #[test]
    fn single_threaded_sweep_works() {
        let mut spec = quick_spec();
        spec.threads = 1;
        spec.benchmarks = vec![Benchmark::Sqrt32];
        let results = run_sweep(&spec).expect("sweep runs");
        assert_eq!(results.threads_used, 1);
        assert_eq!(results.cells.len(), 4);
        // One worker, two designs x two core counts: four platforms, each
        // reused nowhere in this tiny grid but cached per coordinate.
        assert_eq!(results.platforms_built, 4);
        assert_eq!(results.service.steals, 0, "one worker cannot steal");
    }

    #[test]
    fn streaming_reports_every_cell_and_matches_gather() {
        let spec = quick_spec();
        let mut seen: Vec<SweepProgress> = Vec::new();
        let streamed = run_sweep_with(&spec, |cell, progress| {
            assert!(!cell.describe().is_empty());
            seen.push(progress);
        })
        .expect("sweep runs");

        let total = spec.len();
        assert_eq!(seen.len(), total);
        // `completed` counts monotonically 1..=total as cells stream in.
        assert_eq!(
            seen.iter().map(|p| p.completed).collect::<Vec<_>>(),
            (1..=total).collect::<Vec<_>>()
        );
        assert!(seen.iter().all(|p| p.total == total));
        // Every grid index is reported exactly once.
        let mut indices: Vec<usize> = seen.iter().map(|p| p.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..total).collect::<Vec<_>>());

        // The streamed aggregate is the non-streaming result, bit-exactly.
        let gathered = run_sweep(&spec).expect("sweep runs");
        assert_eq!(streamed.cells.len(), gathered.cells.len());
        for (a, b) in streamed.cells.iter().zip(&gathered.cells) {
            assert_eq!(a.run.stats, b.run.stats);
            assert_eq!(a.run.outputs, b.run.outputs);
        }
    }

    #[test]
    fn empty_grid_returns_immediately_without_workers() {
        for spec in [
            SweepSpec {
                benchmarks: vec![],
                ..quick_spec()
            },
            SweepSpec {
                designs: vec![],
                ..quick_spec()
            },
            SweepSpec {
                core_counts: vec![],
                ..quick_spec()
            },
            SweepSpec {
                shard_samples: vec![],
                ..quick_spec()
            },
        ] {
            assert_eq!(spec.len(), 0);
            assert!(spec.is_empty());
            let results = run_sweep(&spec).expect("empty sweep is trivially ok");
            assert!(results.cells.is_empty());
            assert_eq!(results.threads_used, 0, "no workers for an empty grid");
            assert_eq!(results.platforms_built, 0);
            assert_eq!(results.service, ServiceStats::default());
            // Lookup paths are well-defined on the empty result.
            assert!(results.cell(Benchmark::Sqrt32, true, 2).is_none());
            assert!(results.speedup(Benchmark::Sqrt32, 2).is_none());
        }
        let full = quick_spec();
        assert!(!full.is_empty());
        assert_eq!(full.len(), 8);
    }
}

//! Report builders: the paper's tables and figures side by side with the
//! measured/predicted values of this reproduction.

use crate::experiments::ExperimentData;
use std::fmt;
use ulp_kernels::Benchmark;
use ulp_power::{Activity, Fig3Point, PowerBreakdown, PowerModel};

/// The paper's annotated Fig. 3 reference values for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperFig3 {
    /// Max workload of the improved design (MOps/s) and its power (mW).
    pub with_sync: (f64, f64),
    /// Max workload of the baseline design and its power.
    pub without_sync: (f64, f64),
    /// Reported saving at the baseline's max workload (fraction).
    pub saving: f64,
}

/// The paper's Fig. 3 annotations (Section V-B).
pub fn paper_fig3(benchmark: Benchmark) -> PaperFig3 {
    match benchmark {
        Benchmark::Mrpfltr => PaperFig3 {
            with_sync: (211.0, 15.38),
            without_sync: (89.0, 10.46),
            saving: 0.64,
        },
        Benchmark::Sqrt32 => PaperFig3 {
            with_sync: (290.0, 18.27),
            without_sync: (156.0, 12.61),
            saving: 0.56,
        },
        Benchmark::Mrpdln => PaperFig3 {
            with_sync: (336.0, 20.09),
            without_sync: (167.0, 13.93),
            saving: 0.55,
        },
    }
}

fn minmax(values: impl IntoIterator<Item = f64>) -> (f64, f64) {
    values
        .into_iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

/// Table I reproduction: per-component dynamic power at 8 MOps/s and
/// 1.2 V, as min–max ranges over the three benchmarks, for both designs.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// Per-benchmark breakdowns, baseline design.
    pub without: Vec<(Benchmark, PowerBreakdown)>,
    /// Per-benchmark breakdowns, improved design.
    pub with: Vec<(Benchmark, PowerBreakdown)>,
}

/// Builds the Table I reproduction at the paper's operating point.
pub fn table1_report(data: &ExperimentData, model: &PowerModel) -> Table1Report {
    let at = |act: &Activity| model.breakdown(act, 8.0, 1.2);
    Table1Report {
        without: data
            .benchmarks
            .iter()
            .map(|d| (d.benchmark, at(&d.act_without)))
            .collect(),
        with: data
            .benchmarks
            .iter()
            .map(|d| (d.benchmark, at(&d.act_with)))
            .collect(),
    }
}

impl Table1Report {
    /// `(min, max)` of a component over the benchmarks of one design.
    pub fn range(&self, with_sync: bool, f: fn(&PowerBreakdown) -> f64) -> (f64, f64) {
        let set = if with_sync { &self.with } else { &self.without };
        minmax(set.iter().map(|(_, b)| f(b)))
    }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TABLE I — dynamic power distribution at 8 MOps/s and 1.2 V (mW)"
        )?;
        writeln!(
            f,
            "{:<12} | {:>23} | {:>23} | paper w/o        | paper w/",
            "component", "w/o synchronizer", "with synchronizer"
        )?;
        writeln!(f, "{}", "-".repeat(100))?;
        type Row = (
            &'static str,
            fn(&PowerBreakdown) -> f64,
            &'static str,
            &'static str,
        );
        let rows: [Row; 8] = [
            ("Total", |b| b.total(), "0.64 < P < 0.94", "0.47 < P < 0.58"),
            ("Cores", |b| b.cores, "0.14", "0.16"),
            ("IM", |b| b.im, "0.20 < P < 0.36", "0.09 < P < 0.15"),
            ("DM", |b| b.dm, "0.05 < P < 0.08", "0.06 < P < 0.08"),
            ("D-Xbar", |b| b.dxbar, "0.06", "0.05"),
            ("I-Xbar", |b| b.ixbar, "0.03", "0.02"),
            ("Synchronizer", |b| b.synchronizer, "-", "0.01"),
            (
                "Clock Tree",
                |b| b.clock,
                "0.09 < P < 0.16",
                "0.05 < P < 0.08",
            ),
        ];
        for (name, get, paper_without, paper_with) in rows {
            let (lo_wo, hi_wo) = self.range(false, get);
            let (lo_w, hi_w) = self.range(true, get);
            writeln!(
                f,
                "{name:<12} | {:>10.3} .. {:<10.3} | {:>10.3} .. {:<10.3} | {paper_without:<16} | {paper_with}",
                lo_wo, hi_wo, lo_w, hi_w
            )?;
        }
        Ok(())
    }
}

/// Fig. 3 reproduction for one benchmark: both voltage-scaled power
/// curves, their endpoints, and the saving at the baseline's maximum
/// workload.
#[derive(Debug, Clone)]
pub struct Fig3Report {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Curve of the improved design (log-spaced workloads).
    pub with_sync: Vec<Fig3Point>,
    /// Curve of the baseline design.
    pub without_sync: Vec<Fig3Point>,
    /// Measured saving at the baseline's maximum workload.
    pub saving_at_crossover: f64,
    /// Baseline maximum workload (MOps/s) — the crossover point.
    pub crossover_mops: f64,
    /// The paper's annotations for comparison.
    pub paper: PaperFig3,
}

/// Builds the Fig. 3 reproduction for `benchmark`.
pub fn fig3_report(
    data: &ExperimentData,
    model: &PowerModel,
    benchmark: Benchmark,
    points: usize,
) -> Fig3Report {
    let d = data.benchmark(benchmark);
    // The comparison point is the highest workload both designs sustain —
    // normally the baseline's maximum (the improved design extends the
    // range; Fig. 3's annotation point).
    let crossover = model
        .max_workload(&d.act_without)
        .min(model.max_workload(&d.act_with));
    Fig3Report {
        benchmark,
        with_sync: model.fig3_series(&d.act_with, 1.0, points),
        without_sync: model.fig3_series(&d.act_without, 1.0, points),
        saving_at_crossover: model
            .saving_at(&d.act_with, &d.act_without, crossover)
            .expect("crossover feasible on both designs"),
        crossover_mops: crossover,
        paper: paper_fig3(benchmark),
    }
}

impl fmt::Display for Fig3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FIG. 3 ({}) — total power vs workload, voltage scaling enabled",
            self.benchmark
        )?;
        writeln!(
            f,
            "{:>12} | {:>14} | {:>14}",
            "MOps/s", "w/o sync (mW)", "with sync (mW)"
        )?;
        writeln!(f, "{}", "-".repeat(48))?;
        // Render on the union of workloads; missing points (beyond a
        // design's max workload) print as '-'.
        let mut grid: Vec<f64> = self
            .with_sync
            .iter()
            .chain(&self.without_sync)
            .map(|p| p.w_mops)
            .collect();
        grid.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        grid.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let find = |series: &[Fig3Point], w: f64| {
            series
                .iter()
                .find(|p| (p.w_mops - w).abs() < 1e-9)
                .map(|p| format!("{:14.3}", p.total_mw))
                .unwrap_or_else(|| format!("{:>14}", "-"))
        };
        for w in grid {
            writeln!(
                f,
                "{w:>12.2} | {} | {}",
                find(&self.without_sync, w),
                find(&self.with_sync, w)
            )?;
        }
        let last_w = self.with_sync.last().expect("non-empty");
        let last_wo = self.without_sync.last().expect("non-empty");
        writeln!(f, "endpoints (max workload at 1.2 V):")?;
        writeln!(
            f,
            "  with sync: {:7.1} MOps/s @ {:6.2} mW   (paper: {:5.0} MOps/s @ {:5.2} mW)",
            last_w.w_mops, last_w.total_mw, self.paper.with_sync.0, self.paper.with_sync.1
        )?;
        writeln!(
            f,
            "  w/o sync : {:7.1} MOps/s @ {:6.2} mW   (paper: {:5.0} MOps/s @ {:5.2} mW)",
            last_wo.w_mops, last_wo.total_mw, self.paper.without_sync.0, self.paper.without_sync.1
        )?;
        writeln!(
            f,
            "saving at the baseline's max workload ({:.0} MOps/s): {:.0} %   (paper: {:.0} %)",
            self.crossover_mops,
            self.saving_at_crossover * 100.0,
            self.paper.saving * 100.0
        )
    }
}

/// The in-text results of Section V-B.
#[derive(Debug, Clone)]
pub struct IntextReport {
    /// Per-benchmark rows: (name, speedup, ops/cycle with, ops/cycle
    /// without, IM reduction, DM increase, iso-voltage saving,
    /// voltage-scaled saving at crossover, sync power share, clock ratio).
    pub rows: Vec<IntextRow>,
}

/// One benchmark's in-text numbers.
#[derive(Debug, Clone, Copy)]
pub struct IntextRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Cycle-count speed-up (paper: up to 2.4×).
    pub speedup: f64,
    /// Ops/cycle, improved design (paper: 2.5–4.0).
    pub ops_with: f64,
    /// Ops/cycle, baseline (paper: 1.1–2.0).
    pub ops_without: f64,
    /// IM access reduction (paper: up to 60 %).
    pub im_reduction: f64,
    /// DM access increase (paper: < 10 %).
    pub dm_increase: f64,
    /// Dynamic power saving at equal workload and voltage (paper: ≤38 %).
    pub iso_voltage_saving: f64,
    /// Saving with voltage scaling at the baseline's max workload.
    pub scaled_saving: f64,
    /// Synchronizer share of the improved design's total power (< 2 %).
    pub sync_share: f64,
    /// Clock-tree power ratio baseline/improved at equal workload (≈ 2×).
    pub clock_ratio: f64,
}

/// Builds the in-text report.
pub fn intext_report(data: &ExperimentData, model: &PowerModel) -> IntextReport {
    let rows = data
        .benchmarks
        .iter()
        .map(|d| {
            let b_with = model.breakdown(&d.act_with, 8.0, 1.2);
            let b_without = model.breakdown(&d.act_without, 8.0, 1.2);
            let crossover = model
                .max_workload(&d.act_without)
                .min(model.max_workload(&d.act_with));
            IntextRow {
                benchmark: d.benchmark,
                speedup: d.speedup(),
                ops_with: d.act_with.ops_per_cycle,
                ops_without: d.act_without.ops_per_cycle,
                im_reduction: d.im_access_reduction(),
                dm_increase: d.dm_access_increase(),
                iso_voltage_saving: 1.0 - b_with.total() / b_without.total(),
                scaled_saving: model
                    .saving_at(&d.act_with, &d.act_without, crossover)
                    .expect("crossover feasible"),
                sync_share: b_with.synchronizer / b_with.total(),
                clock_ratio: b_without.clock / b_with.clock,
            }
        })
        .collect();
    IntextReport { rows }
}

impl fmt::Display for IntextReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IN-TEXT RESULTS (Section V-B)")?;
        writeln!(
            f,
            "{:<8} | {:>7} | {:>9} | {:>9} | {:>7} | {:>7} | {:>8} | {:>8} | {:>6} | {:>6}",
            "bench",
            "speedup",
            "ops/c w/",
            "ops/c w/o",
            "IM red.",
            "DM inc.",
            "iso-V sv",
            "scaled sv",
            "sync%",
            "clk x"
        )?;
        writeln!(f, "{}", "-".repeat(104))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} | {:>6.2}x | {:>9.2} | {:>9.2} | {:>6.0}% | {:>6.1}% | {:>7.0}% | {:>8.0}% | {:>5.1}% | {:>5.2}x",
                r.benchmark.name(),
                r.speedup,
                r.ops_with,
                r.ops_without,
                r.im_reduction * 100.0,
                r.dm_increase * 100.0,
                r.iso_voltage_saving * 100.0,
                r.scaled_saving * 100.0,
                r.sync_share * 100.0,
                r.clock_ratio
            )?;
        }
        writeln!(
            f,
            "paper    |  ≤2.4x | 2.5..4.0 | 1.1..2.0 |   ≤60% |    <10% |    ≤38% | 55..64%  |   <2% | ~2.0x"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{calibrate, gather};
    use ulp_kernels::WorkloadConfig;

    #[test]
    fn reports_render_and_match_paper_shape() {
        let data = gather(&WorkloadConfig::quick_test()).unwrap();
        let model = calibrate(&data);

        let t1 = table1_report(&data, &model);
        let text = t1.to_string();
        assert!(text.contains("TABLE I"));
        assert!(text.contains("Synchronizer"));
        // Improved design total below baseline total (max of ranges).
        let (_, hi_with) = t1.range(true, |b| b.total());
        let (_, hi_without) = t1.range(false, |b| b.total());
        assert!(hi_with < hi_without);

        let f3 = fig3_report(&data, &model, Benchmark::Mrpfltr, 12);
        let text = f3.to_string();
        assert!(text.contains("FIG. 3"));
        assert!(f3.saving_at_crossover > 0.2, "{}", f3.saving_at_crossover);
        // Improved design extends the workload range.
        assert!(f3.with_sync.last().unwrap().w_mops > f3.without_sync.last().unwrap().w_mops);

        let it = intext_report(&data, &model);
        assert_eq!(it.rows.len(), 3);
        for r in &it.rows {
            // MRPDLN's baseline only degrades at realistic lengths; at
            // this smoke scale require non-regression for it.
            let strict = r.benchmark != Benchmark::Mrpdln;
            assert!(
                r.speedup > if strict { 1.0 } else { 0.97 },
                "{}",
                r.benchmark
            );
            assert!(r.sync_share < 0.05, "sync share {}", r.sync_share);
            if strict {
                assert!(r.clock_ratio > 1.0);
                assert!(r.iso_voltage_saving > 0.0);
                assert!(r.scaled_saving > r.iso_voltage_saving);
            }
        }
        assert!(it.to_string().contains("IN-TEXT"));
    }
}

//! Data gathering and model calibration shared by all experiments.

use crate::sweep::{run_sweep, SweepSpec};
use ulp_kernels::{Benchmark, BenchmarkRun, RunnerError, WorkloadConfig};
use ulp_power::{Activity, EnergyModel, PowerModel, Table1Targets, VoltageModel};

/// Both designs' runs of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkData {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Run on the improved design (with synchronizer).
    pub with_sync: BenchmarkRun,
    /// Run on the baseline design.
    pub without_sync: BenchmarkRun,
    /// Activity vector of the improved design.
    pub act_with: Activity,
    /// Activity vector of the baseline design.
    pub act_without: Activity,
}

impl BenchmarkData {
    /// Cycle-count speed-up of the improved design (> 1 is faster).
    pub fn speedup(&self) -> f64 {
        self.without_sync.stats.cycles as f64 / self.with_sync.stats.cycles as f64
    }

    /// Relative reduction of physical IM accesses (0.6 = 60 % fewer).
    pub fn im_access_reduction(&self) -> f64 {
        1.0 - self.with_sync.stats.im.total_accesses() as f64
            / self.without_sync.stats.im.total_accesses() as f64
    }

    /// Relative increase of physical DM accesses.
    pub fn dm_access_increase(&self) -> f64 {
        self.with_sync.stats.dm.total_accesses() as f64
            / self.without_sync.stats.dm.total_accesses() as f64
            - 1.0
    }
}

/// All six runs (3 benchmarks × 2 designs), verified against the golden
/// models.
#[derive(Debug, Clone)]
pub struct ExperimentData {
    /// Per-benchmark data in the paper's order.
    pub benchmarks: Vec<BenchmarkData>,
    /// The workload configuration used.
    pub config: WorkloadConfig,
}

impl ExperimentData {
    /// Data of one benchmark.
    pub fn benchmark(&self, b: Benchmark) -> &BenchmarkData {
        self.benchmarks
            .iter()
            .find(|d| d.benchmark == b)
            .expect("all benchmarks gathered")
    }

    /// Mean activity of the baseline design over the three benchmarks.
    pub fn mean_baseline(&self) -> Activity {
        Activity::mean(
            &self
                .benchmarks
                .iter()
                .map(|d| d.act_without)
                .collect::<Vec<_>>(),
        )
    }

    /// Mean activity of the improved design over the three benchmarks.
    pub fn mean_with_sync(&self) -> Activity {
        Activity::mean(
            &self
                .benchmarks
                .iter()
                .map(|d| d.act_with)
                .collect::<Vec<_>>(),
        )
    }
}

/// Runs every benchmark on both designs and verifies all outputs against
/// the golden models. The six runs execute in parallel through the
/// threaded sweep harness ([`run_sweep`]); every simulation is
/// deterministic and independent, so the data is identical to a serial
/// gather.
///
/// # Errors
///
/// Any [`RunnerError`], including bit-exact output mismatches.
pub fn gather(config: &WorkloadConfig) -> Result<ExperimentData, RunnerError> {
    let results = run_sweep(&SweepSpec::paper_grid(config.clone()))?;
    let take = |benchmark, with_sync| -> Result<BenchmarkRun, RunnerError> {
        let run = results
            .cell(benchmark, with_sync, 8)
            .expect("paper grid covers all six runs")
            .run
            .clone();
        run.verify()?;
        Ok(run)
    };
    let mut benchmarks = Vec::new();
    for benchmark in Benchmark::ALL {
        let with_sync = take(benchmark, true)?;
        let without_sync = take(benchmark, false)?;
        let act_with = Activity::from_stats(&with_sync.stats);
        let act_without = Activity::from_stats(&without_sync.stats);
        benchmarks.push(BenchmarkData {
            benchmark,
            with_sync,
            without_sync,
            act_with,
            act_without,
        });
    }
    Ok(ExperimentData {
        benchmarks,
        config: config.clone(),
    })
}

/// Calibrates the power model exactly as described in `DESIGN.md`: fit the
/// event energies to the paper's Table I **baseline** column using the
/// mean measured baseline activity; the improved design's power is then a
/// prediction from its own activity.
pub fn calibrate(data: &ExperimentData) -> PowerModel {
    let energy = EnergyModel::calibrate(
        &data.mean_baseline(),
        &data.mean_with_sync(),
        &Table1Targets::paper(),
    );
    PowerModel::new(energy, VoltageModel::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_and_calibrate_quick() {
        let data = gather(&WorkloadConfig::quick_test()).expect("all runs valid");
        assert_eq!(data.benchmarks.len(), 3);
        for d in &data.benchmarks {
            // MRPDLN's baseline only degrades at realistic signal lengths
            // (see the runner tests); at this smoke scale require
            // non-regression, elsewhere strict improvement.
            let floor = if d.benchmark == ulp_kernels::Benchmark::Mrpdln {
                0.97
            } else {
                1.0
            };
            assert!(d.speedup() > floor, "{}: {}", d.benchmark, d.speedup());
            if d.benchmark != ulp_kernels::Benchmark::Mrpdln {
                assert!(d.im_access_reduction() > 0.2, "{}", d.benchmark);
            }
            assert!(d.act_with.has_sync && !d.act_without.has_sync);
        }
        let model = calibrate(&data);
        // Calibration reproduces the baseline Table-I column by design.
        let b = model.breakdown(&data.mean_baseline(), 8.0, 1.2);
        assert!((b.im - 0.28).abs() < 1e-9);
        assert!((b.cores - 0.14).abs() < 1e-9);
        // The improved design must come out cheaper in total.
        let i = model.breakdown(&data.mean_with_sync(), 8.0, 1.2);
        assert!(i.total() < b.total());
    }
}

//! # ulp-bench — the experiment harness of the DATE 2013 reproduction
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section V) from simulation:
//!
//! | Artifact | Binary | Library entry |
//! |---|---|---|
//! | Table I (power distribution, 8 MOps/s, 1.2 V) | `table1` | [`table1_report`] |
//! | Fig. 3a/b/c (power vs workload, voltage scaled) | `fig3` | [`fig3_report`] |
//! | In-text numbers (speed-up, Ops/cycle, access ratios) | `intext` | [`intext_report`] |
//! | Ablations A1–A6 of `DESIGN.md` | `ablation` | [`ablation`] |
//! | (benchmark × design × cores) grid, streamed | `sweep` | [`run_sweep`] / [`run_sweep_with`] |
//! | CI perf-regression gate over `BENCH_*.json` records | `perfgate` | — |
//!
//! The flow mirrors the paper: run the three ECG benchmarks on both
//! designs ([`gather`]), calibrate the event-energy model against the
//! baseline column of Table I ([`calibrate`]), then *predict* the improved
//! design's power from its own measured activity. `gather` itself executes
//! its six runs through [`run_sweep`], which is a thin client of the
//! work-stealing batch simulation service ([`ulp_service::SimService`]):
//! grids become job batches, results stream back incrementally, and the
//! service's scheduling stats ride along on [`SweepResults`].

pub mod ablation;
mod experiments;
mod report;
mod sweep;

pub use experiments::{calibrate, gather, BenchmarkData, ExperimentData};
pub use report::{
    fig3_report, intext_report, table1_report, Fig3Report, IntextReport, Table1Report,
};
pub use sweep::{
    run_sweep, run_sweep_with, SweepCell, SweepProgress, SweepResults, SweepSpec,
    PAPER_WORKLOAD_MOPS,
};

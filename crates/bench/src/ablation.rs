//! Ablation studies A1–A6 of `DESIGN.md`.
//!
//! Each study isolates one design decision of the paper's platform and
//! reports its effect on the headline metrics (ops/cycle, IM accesses per
//! op, run cycles).

use std::fmt;
use ulp_kernels::{run_benchmark_on, Benchmark, BufferLayout, SyncGranularity, WorkloadConfig};
use ulp_mem::{BankMapping, ServingPolicy};
use ulp_platform::PlatformConfig;
use ulp_power::{PowerModel, VoltageModel};

/// One measured configuration of an ablation sweep.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Useful operations per cycle.
    pub ops_per_cycle: f64,
    /// Physical IM accesses per op.
    pub im_per_op: f64,
    /// Physical DM accesses per op.
    pub dm_per_op: f64,
    /// Total run cycles.
    pub cycles: u64,
}

/// A complete ablation study.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// Study title.
    pub title: String,
    /// Measured configurations.
    pub rows: Vec<AblationRow>,
}

impl fmt::Display for AblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(
            f,
            "{:<42} | {:>8} | {:>8} | {:>8} | {:>10}",
            "configuration", "ops/cyc", "IM/op", "DM/op", "cycles"
        )?;
        writeln!(f, "{}", "-".repeat(88))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<42} | {:>8.2} | {:>8.3} | {:>8.3} | {:>10}",
                r.label, r.ops_per_cycle, r.im_per_op, r.dm_per_op, r.cycles
            )?;
        }
        Ok(())
    }
}

fn measure(
    label: impl Into<String>,
    benchmark: Benchmark,
    platform: PlatformConfig,
    cfg: &WorkloadConfig,
) -> AblationRow {
    let run = run_benchmark_on(benchmark, platform, cfg).expect("ablation run");
    run.verify().expect("ablation outputs valid");
    let s = &run.stats;
    AblationRow {
        label: label.into(),
        ops_per_cycle: s.ops_per_cycle(),
        im_per_op: s.im_accesses_per_op(),
        dm_per_op: s.dm_accesses_per_op(),
        cycles: s.cycles,
    }
}

/// A1 — instruction-memory bank mapping: how much of the baseline's
/// slowdown is IM-bank serialization? Interleaving spreads consecutive
/// fetch addresses over all banks.
pub fn im_mapping(benchmark: Benchmark, cfg: &WorkloadConfig) -> AblationReport {
    let mut rows = Vec::new();
    for (mname, mapping) in [
        ("blocked", BankMapping::Blocked),
        ("interleaved", BankMapping::Interleaved),
    ] {
        for with_sync in [true, false] {
            let mut p = PlatformConfig::paper(with_sync).with_max_cycles(cfg.max_cycles);
            p.im_mapping = mapping;
            rows.push(measure(
                format!(
                    "IM {mname}, {}",
                    if with_sync { "with sync" } else { "baseline" }
                ),
                benchmark,
                p,
                cfg,
            ));
        }
    }
    AblationReport {
        title: format!("A1 — IM bank mapping ({benchmark})"),
        rows,
    }
}

/// A2 — separating the two halves of the proposal: the synchronizer (ISE +
/// barrier hardware) and the enhanced D-Xbar serving policy.
pub fn policy(benchmark: Benchmark, cfg: &WorkloadConfig) -> AblationReport {
    let combos: [(&str, bool, ServingPolicy); 4] = [
        ("neither (paper baseline)", false, ServingPolicy::Baseline),
        ("policy only", false, ServingPolicy::SyncAware),
        ("synchronizer only", true, ServingPolicy::Baseline),
        ("both (paper improved)", true, ServingPolicy::SyncAware),
    ];
    let rows = combos
        .into_iter()
        .map(|(label, synchronizer, dxbar)| {
            let mut p = PlatformConfig::paper(synchronizer).with_max_cycles(cfg.max_cycles);
            p.dxbar_policy = dxbar;
            measure(label, benchmark, p, cfg)
        })
        .collect();
    AblationReport {
        title: format!("A2 — synchronizer vs serving policy ({benchmark})"),
        rows,
    }
}

/// A3 — core-count sweep (the paper fixes 8 cores).
pub fn cores(benchmark: Benchmark, cfg: &WorkloadConfig) -> AblationReport {
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        for with_sync in [true, false] {
            let p = PlatformConfig::paper(with_sync)
                .with_cores(n)
                .with_max_cycles(cfg.max_cycles);
            rows.push(measure(
                format!(
                    "{n} cores, {}",
                    if with_sync { "with sync" } else { "baseline" }
                ),
                benchmark,
                p,
                cfg,
            ));
        }
    }
    AblationReport {
        title: format!("A3 — core-count sweep ({benchmark})"),
        rows,
    }
}

/// A5 — synchronization-point granularity: per-sample (default) versus
/// per-element placement.
pub fn granularity(benchmark: Benchmark, cfg: &WorkloadConfig) -> AblationReport {
    let mut rows = Vec::new();
    for (gname, g) in [
        ("per-sample sections", SyncGranularity::PerSample),
        ("per-element sections", SyncGranularity::PerElement),
    ] {
        let mut c = cfg.clone();
        c.granularity = g;
        let p = PlatformConfig::paper(true).with_max_cycles(cfg.max_cycles);
        rows.push(measure(gname, benchmark, p, &c));
    }
    AblationReport {
        title: format!("A5 — sync-point granularity ({benchmark}, with sync)"),
        rows,
    }
}

/// A6 — buffer-to-bank placement: the realistic linker-packed layout
/// (cross-core data-access conflicts possible, the scenario Section IV of
/// the paper addresses) versus the idealized one-private-bank-per-core
/// placement that can never conflict.
pub fn layout(benchmark: Benchmark, cfg: &WorkloadConfig) -> AblationReport {
    let mut rows = Vec::new();
    for (lname, l) in [
        ("linker-packed buffers", BufferLayout::Packed),
        ("private-bank buffers", BufferLayout::PrivateBank),
    ] {
        for with_sync in [true, false] {
            let mut c = cfg.clone();
            c.layout = l;
            let p = PlatformConfig::paper(with_sync).with_max_cycles(cfg.max_cycles);
            rows.push(measure(
                format!(
                    "{lname}, {}",
                    if with_sync { "with sync" } else { "baseline" }
                ),
                benchmark,
                p,
                &c,
            ));
        }
    }
    AblationReport {
        title: format!("A6 — buffer-to-bank placement ({benchmark})"),
        rows,
    }
}

/// A4 — sensitivity of the Fig. 3 saving to the voltage-model parameters
/// (`alpha`, `V_t`). Uses pre-gathered activities, so it needs the
/// calibrated model and the two activity vectors of one benchmark.
pub fn voltage_sensitivity(
    model: &PowerModel,
    with_sync: &ulp_power::Activity,
    without_sync: &ulp_power::Activity,
) -> VoltageSensitivityReport {
    let mut rows = Vec::new();
    for alpha in [1.2, 1.5, 2.0] {
        for v_t in [0.35, 0.45, 0.55] {
            let voltage = VoltageModel {
                alpha,
                v_t,
                ..VoltageModel::default()
            };
            let m = PowerModel::new(model.energy, voltage);
            let crossover = m.max_workload(without_sync);
            let saving = m
                .saving_at(with_sync, without_sync, crossover)
                .expect("crossover feasible");
            rows.push((alpha, v_t, saving));
        }
    }
    VoltageSensitivityReport { rows }
}

/// Result grid of [`voltage_sensitivity`].
#[derive(Debug, Clone)]
pub struct VoltageSensitivityReport {
    /// `(alpha, v_t, saving-at-crossover)` triples.
    pub rows: Vec<(f64, f64, f64)>,
}

impl fmt::Display for VoltageSensitivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "A4 — voltage-model sensitivity (saving at crossover)")?;
        writeln!(f, "{:>6} | {:>6} | {:>8}", "alpha", "V_t", "saving")?;
        writeln!(f, "{}", "-".repeat(28))?;
        for (alpha, v_t, saving) in &self.rows {
            writeln!(f, "{alpha:>6.1} | {v_t:>6.2} | {:>7.1}%", saving * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{calibrate, gather};

    #[test]
    fn policy_ablation_orders_configurations() {
        let cfg = WorkloadConfig::quick_test();
        let report = policy(Benchmark::Sqrt32, &cfg);
        assert_eq!(report.rows.len(), 4);
        let by_label = |label: &str| {
            report
                .rows
                .iter()
                .find(|r| r.label.starts_with(label))
                .expect("row exists")
        };
        let neither = by_label("neither");
        let both = by_label("both");
        assert!(
            both.ops_per_cycle > neither.ops_per_cycle,
            "full proposal beats baseline"
        );
        assert!(both.im_per_op < neither.im_per_op);
        assert!(report.to_string().contains("A2"));
    }

    #[test]
    fn interleaved_im_helps_the_baseline() {
        let cfg = WorkloadConfig::quick_test();
        let report = im_mapping(Benchmark::Sqrt32, &cfg);
        let find = |label: &str| {
            report
                .rows
                .iter()
                .find(|r| r.label == label)
                .expect("row exists")
        };
        // Interleaving removes most same-bank fetch serialization for the
        // divergent baseline.
        let blocked = find("IM blocked, baseline");
        let inter = find("IM interleaved, baseline");
        assert!(inter.ops_per_cycle >= blocked.ops_per_cycle * 0.95);
        // But interleaving destroys broadcasting: IM accesses go *up* for
        // the lockstep design.
        let blocked_s = find("IM blocked, with sync");
        let inter_s = find("IM interleaved, with sync");
        assert!(blocked_s.im_per_op <= inter_s.im_per_op);
    }

    #[test]
    fn core_sweep_scales_throughput() {
        let cfg = WorkloadConfig::quick_test();
        let report = cores(Benchmark::Sqrt32, &cfg);
        let sync_rows: Vec<&AblationRow> = report
            .rows
            .iter()
            .filter(|r| r.label.ends_with("with sync"))
            .collect();
        assert_eq!(sync_rows.len(), 4);
        assert!(
            sync_rows[3].ops_per_cycle > 2.0 * sync_rows[0].ops_per_cycle,
            "8 cores must scale well beyond 1 core"
        );
    }

    #[test]
    fn granularity_trades_sync_traffic_for_lockstep() {
        let cfg = WorkloadConfig::quick_test();
        let report = granularity(Benchmark::Mrpfltr, &cfg);
        let sample = &report.rows[0];
        let element = &report.rows[1];
        assert!(
            element.dm_per_op > sample.dm_per_op,
            "finer sections cost more sync-word traffic"
        );
        assert!(
            element.im_per_op < sample.im_per_op,
            "finer sections hold lockstep tighter"
        );
    }

    #[test]
    fn voltage_sensitivity_grid() {
        let data = gather(&WorkloadConfig::quick_test()).unwrap();
        let model = calibrate(&data);
        let d = &data.benchmarks[0];
        let report = voltage_sensitivity(&model, &d.act_with, &d.act_without);
        assert_eq!(report.rows.len(), 9);
        for (_, _, saving) in &report.rows {
            assert!(*saving > 0.0 && *saving < 1.0);
        }
        assert!(report.to_string().contains("A4"));
    }
}

//! Criterion wrapper for the Fig. 3 harness: curve generation for all
//! three benchmarks from pre-gathered activities.

use criterion::{criterion_group, criterion_main, Criterion};
use ulp_bench::{calibrate, fig3_report, gather};
use ulp_kernels::{Benchmark, WorkloadConfig};

fn bench_fig3(c: &mut Criterion) {
    let data = gather(&WorkloadConfig::quick_test()).expect("runs valid");
    let model = calibrate(&data);
    let mut group = c.benchmark_group("fig3");
    for benchmark in Benchmark::ALL {
        group.bench_function(benchmark.name(), |b| {
            b.iter(|| {
                let report = fig3_report(&data, &model, benchmark, 32);
                // At this smoke scale MRPDLN's saving can sit at ~0
                // (see EXPERIMENTS.md); the bench guards cost, not shape.
                assert!(report.saving_at_crossover.is_finite());
                report.with_sync.len() + report.without_sync.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);

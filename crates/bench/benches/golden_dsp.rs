//! Criterion benchmarks of the golden-model DSP (host-side reference
//! implementations): morphological filtering, delineation and multi-lead
//! combination throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ulp_biosignal::{
    combine_two_leads, delineate, generate, mrpfltr, DelineationConfig, EcgConfig, MrpfltrConfig,
};

fn bench_golden(c: &mut Criterion) {
    let sig = generate(&EcgConfig::default(), 2048);
    let sig2 = generate(
        &EcgConfig {
            noise_seed: 7,
            ..EcgConfig::default()
        },
        2048,
    );
    let mut group = c.benchmark_group("golden_dsp");
    group.throughput(Throughput::Elements(2048));
    group.bench_function("mrpfltr", |b| {
        b.iter(|| mrpfltr(&sig.samples, &MrpfltrConfig::default()))
    });
    group.bench_function("mrpdln", |b| {
        b.iter(|| delineate(&sig.samples, &DelineationConfig::default()))
    });
    group.bench_function("sqrt32_combine", |b| {
        b.iter(|| combine_two_leads(&sig.samples, &sig2.samples))
    });
    group.finish();
}

criterion_group!(benches, bench_golden);
criterion_main!(benches);

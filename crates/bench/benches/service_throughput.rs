//! Criterion benchmark of the batch simulation service: jobs per second
//! through [`SimService`] for the two shapes the scheduler must handle
//! well — a uniform grid that exercises the platform-cache fast path, and
//! a mixed-size grid that exercises stealing. A regression here means the
//! scheduler, the deques or the platform cache got slower, independent of
//! the engine itself (which `step_throughput` tracks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_service::{JobSpec, ServiceConfig, SimService};

/// Jobs submitted (and drained) per benchmark iteration.
const JOBS_PER_ITER: u64 = 6;

/// The smallest workload the kernels support: the simulations stay short,
/// so service overhead (scheduling, caching, channels) is a visible
/// fraction of the measurement rather than noise under the simulation.
fn tiny_workload() -> Arc<WorkloadConfig> {
    let mut w = WorkloadConfig::quick_test();
    w.n = 16;
    Arc::new(w)
}

/// One batch: submit `JOBS_PER_ITER` jobs, stream all results back.
fn run_batch(service: &mut SimService, specs: &[JobSpec]) -> u64 {
    for spec in specs {
        service
            .submit(spec.clone())
            .expect("unbounded queue admits");
    }
    let mut cycles = 0;
    for _ in 0..specs.len() {
        let result = service.recv().expect("job completes");
        cycles += result.outcome.expect("job runs").run.stats.cycles;
    }
    cycles
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(JOBS_PER_ITER));
    let workload = tiny_workload();

    // Uniform grid, one worker: every job after the first hits the
    // platform cache — the reuse fast path.
    let uniform: Vec<JobSpec> = (0..JOBS_PER_ITER)
        .map(|_| JobSpec::new(Benchmark::Sqrt32, 2, workload.clone()))
        .collect();
    let mut service = SimService::start(ServiceConfig::builder().workers(1).build());
    group.bench_function(BenchmarkId::new("uniform_cached", 1), |b| {
        b.iter(|| run_batch(&mut service, &uniform))
    });
    service.finish();

    // Mixed-size grid, two workers: 2-core cells next to 8-core cells,
    // pinned lopsidedly so the pool must steal to stay busy.
    let mixed: Vec<JobSpec> = (0..JOBS_PER_ITER)
        .map(|i| {
            let cores = if i % 3 == 0 { 8 } else { 2 };
            JobSpec::new(Benchmark::Sqrt32, cores, workload.clone())
                .with_sync(i % 2 == 0)
                .pinned(0)
        })
        .collect();
    let mut service = SimService::start(ServiceConfig::builder().workers(2).build());
    group.bench_function(BenchmarkId::new("mixed_stealing", 2), |b| {
        b.iter(|| run_batch(&mut service, &mixed))
    });
    let stats = service.finish();
    println!(
        "service_throughput/mixed_stealing: {} jobs, {} steals, {} cache hits",
        stats.jobs_run, stats.steals, stats.platform_cache_hits
    );

    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);

//! Criterion benchmark of the workload-sharding subsystem: recording
//! samples per second through plan → service fan-out → merge, versus
//! shard size. Small shards buy parallelism but pay more halo re-work and
//! more scheduling; this tracks where the trade sits so a regression in
//! the shard runner or the merge is visible independent of the engine
//! (`step_throughput`) and the scheduler (`service_throughput`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_shard::{merge, ShardPlan, ShardRunConfig, ShardRunner, ShardedRun};

/// Recording length per iteration: 4× the paper window, long enough for
/// every shard size below to produce a multi-shard plan.
const RECORDING: usize = 1024;

fn run_sharded(workload: &WorkloadConfig, samples_per_shard: usize) -> ShardedRun {
    let plan = ShardPlan::for_workload(Benchmark::Sqrt32, workload, samples_per_shard)
        .expect("valid geometry");
    ShardRunner::new(
        ShardRunConfig::new(Benchmark::Sqrt32, true, 2, workload.clone()),
        plan,
    )
    .expect("plan covers workload")
    .run_local(2)
    .expect("shards run")
}

fn bench_shard_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(RECORDING as u64));
    let workload = WorkloadConfig {
        n: RECORDING,
        ..WorkloadConfig::quick_test()
    };

    for samples_per_shard in [128usize, 256] {
        group.bench_function(BenchmarkId::new("sqrt32", samples_per_shard), |b| {
            b.iter(|| {
                let sharded = run_sharded(&workload, samples_per_shard);
                let merged = merge(&sharded).expect("plan-ordered shards merge");
                assert_eq!(merged.run.outputs[0].len(), RECORDING);
                merged.run.stats.cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_throughput);
criterion_main!(benches);

//! Criterion wrapper for the Table I harness: one full
//! gather-calibrate-report cycle at test scale (the `table1` binary runs
//! the paper-scale version and prints the table).

use criterion::{criterion_group, criterion_main, Criterion};
use ulp_bench::{calibrate, gather, table1_report};
use ulp_kernels::WorkloadConfig;

fn bench_table1(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick_test();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("gather_calibrate_report", |b| {
        b.iter(|| {
            let data = gather(&cfg).expect("runs valid");
            let model = calibrate(&data);
            table1_report(&data, &model).to_string().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

//! Telemetry overhead gate: the same mixed service workload timed twice
//! through one process — once with telemetry disabled (the default
//! no-op handles) and once with it enabled (per-worker event rings and
//! live metrics) — and gated on the *ratio* of the two, not an absolute
//! rate. The disabled path is the zero-cost claim: a single branch per
//! record site. The enabled path is the cheap claim: bounded lock-free
//! rings that drop-and-count rather than block. A ratio above the gate's
//! tolerance means one of those claims broke.
//!
//! Not a criterion harness: the gated quantity is a ratio of two
//! measurements that must share a process (same platform caches, same
//! thermal state, interleaved rounds), so the bench writes its perf-gate
//! record directly, mirroring the criterion shim's `BENCH_*.json` format
//! with `"lower_is_better":true` and a per-record `"tolerance"`.
//!
//! Honours the shared bench environment:
//! * `ULP_BENCH_QUICK=1` — fewer rounds (CI smoke sizing).
//! * `ULP_BENCH_JSON_DIR=<dir>` — write `BENCH_telemetry_overhead_*.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_service::{JobSpec, ServiceConfig, SimService};
use ulp_telemetry::Telemetry;

/// One worker per pool: the uniform cache-hit path is deterministic, so
/// round times are tight enough to gate a 5% ratio (a mixed multi-worker
/// grid schedules nondeterministically and its ±10% round noise would
/// swamp the quantity under test — every record site fires on one worker
/// just the same).
const WORKERS: usize = 1;

/// Gate headroom for the enabled/disabled ratio: telemetry must stay
/// within 5% of the untraced pool (the acceptance bound), so the record
/// carries its own tolerance instead of the gate's 20% default.
const RATIO_TOLERANCE: f64 = 0.05;

/// The smallest workload the kernels support: jobs stay short, so the
/// per-job service overhead — where every telemetry record site lives —
/// is a visible fraction of the measurement.
fn tiny_workload() -> Arc<WorkloadConfig> {
    let mut w = WorkloadConfig::quick_test();
    w.n = 16;
    Arc::new(w)
}

/// The uniform grid both pools run: identical 2-core cells, so every job
/// after the first hits the platform cache and each round does the same
/// work in the same order.
fn specs(jobs: usize, workload: &Arc<WorkloadConfig>) -> Vec<JobSpec> {
    (0..jobs)
        .map(|_| JobSpec::new(Benchmark::Sqrt32, 2, workload.clone()))
        .collect()
}

/// One batch: submit every spec, stream every result back.
fn run_batch(service: &mut SimService, specs: &[JobSpec]) {
    for spec in specs {
        service
            .submit(spec.clone())
            .expect("unbounded queue admits");
    }
    for _ in 0..specs.len() {
        service
            .recv()
            .expect("job completes")
            .outcome
            .expect("job runs");
    }
}

/// Writes one perf-gate record, mirroring the criterion shim's escaping
/// and `BENCH_<label>.json` naming (the label is ASCII-clean, so the
/// shim's collision hash is unnecessary).
fn emit_record(dir: &std::path::Path, label: &str, value: f64, tolerance: f64) {
    let sanitized: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let record = format!(
        "{{\"label\":\"{label}\",\"value\":{value:.4},\"lower_is_better\":true,\
         \"tolerance\":{tolerance}}}\n"
    );
    let path = dir.join(format!("BENCH_{sanitized}.json"));
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, record)) {
        eprintln!("telemetry_overhead: cannot write {}: {e}", path.display());
    }
}

fn main() {
    let quick = std::env::var_os("ULP_BENCH_QUICK").is_some();
    // Small batches keep each round's pair adjacent in time (machine
    // noise here drifts on ~100 ms scales, so a tight pair shares one
    // noise phase and its ratio is clean); many rounds then feed the
    // trimmed mean, which converges as 1/sqrt(rounds).
    let (jobs, rounds) = if quick { (8, 100) } else { (8, 200) };
    let workload = tiny_workload();
    let grid = specs(jobs, &workload);

    let telemetry = Telemetry::enabled();
    let mut plain = SimService::start(ServiceConfig::builder().workers(WORKERS).build());
    let mut traced = SimService::start(
        ServiceConfig::builder()
            .workers(WORKERS)
            .telemetry(telemetry.clone())
            .build(),
    );

    // Warm both pools (platform construction is one-off and identical),
    // then measure in adjacent pairs: machine noise drifts over time, so
    // a round's plain and traced batches share the same noise phase and
    // their *ratio* is far tighter than either absolute time. The median
    // of the per-round ratios is the gated statistic — robust to the odd
    // round that caught a descheduling spike on one side.
    run_batch(&mut plain, &grid);
    run_batch(&mut traced, &grid);
    let mut best_plain = Duration::MAX;
    let mut best_traced = Duration::MAX;
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate which pool runs first so any systematic first/second
        // position bias (cache residency, frequency ramp) cancels across
        // rounds instead of loading one side of every ratio.
        let (plain_elapsed, traced_elapsed) = if round.is_multiple_of(2) {
            let t = Instant::now();
            run_batch(&mut plain, &grid);
            let plain_elapsed = t.elapsed();
            let t = Instant::now();
            run_batch(&mut traced, &grid);
            (plain_elapsed, t.elapsed())
        } else {
            let t = Instant::now();
            run_batch(&mut traced, &grid);
            let traced_elapsed = t.elapsed();
            let t = Instant::now();
            run_batch(&mut plain, &grid);
            (t.elapsed(), traced_elapsed)
        };
        best_plain = best_plain.min(plain_elapsed);
        best_traced = best_traced.min(traced_elapsed);
        ratios.push(traced_elapsed.as_secs_f64() / plain_elapsed.as_secs_f64());
        // Drain the rings off-measurement, like a live exporter would.
        telemetry.collect();
    }
    plain.finish();
    traced.finish();
    // Interquartile mean of the per-round ratios: drops the rounds where
    // one side caught a descheduling spike, averages the stable middle.
    ratios.sort_by(|a, b| a.total_cmp(b));
    let quartile = ratios.len() / 4;
    let middle = &ratios[quartile..ratios.len() - quartile];
    let ratio = middle.iter().sum::<f64>() / middle.len() as f64;

    // The traced pool must actually have been tracing, or the ratio
    // gates nothing.
    telemetry.collect();
    let events = telemetry.events().len();
    assert!(events > 0, "enabled telemetry recorded no events");

    println!(
        "telemetry_overhead: {} jobs x {} rounds on {} workers: \
         disabled {:.3} ms, enabled {:.3} ms, ratio {:.4} ({} events, {} dropped)",
        jobs,
        rounds,
        WORKERS,
        best_plain.as_secs_f64() * 1e3,
        best_traced.as_secs_f64() * 1e3,
        ratio,
        events,
        telemetry.dropped(),
    );

    if let Some(dir) = std::env::var_os("ULP_BENCH_JSON_DIR") {
        emit_record(
            &std::path::PathBuf::from(dir),
            "telemetry_overhead/ratio",
            ratio,
            RATIO_TOLERANCE,
        );
    }
}

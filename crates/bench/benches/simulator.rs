//! Criterion benchmarks of the simulator itself: wall-clock cost of one
//! benchmark run per design, plus the per-table harness entry points.
//! These guard the usability of the experiment flow (`table1`, `fig3`)
//! rather than the paper's metrics, which are cycle counts and power.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ulp_kernels::{run_benchmark, Benchmark, WorkloadConfig};

fn bench_kernel_runs(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick_test();
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for benchmark in Benchmark::ALL {
        for with_sync in [true, false] {
            let label = format!(
                "{}/{}",
                benchmark.name(),
                if with_sync { "sync" } else { "baseline" }
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &with_sync,
                |bencher, &ws| {
                    bencher.iter(|| {
                        let run = run_benchmark(benchmark, ws, &cfg).expect("run ok");
                        assert!(run.is_valid());
                        run.stats.cycles
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_runs);
criterion_main!(benches);

//! Checkpoint overhead gate: the same uniform service workload timed
//! twice through one process — once on the plain run path (no
//! [`ulp_service::JobSpec::checkpoint_every`]) and once on the
//! checkpointed path (several mid-run platform snapshots per job) — and
//! gated on the *ratio* of the two. Checkpointing buys migratability:
//! urgent work can preempt at a snapshot and a lost worker's job resumes
//! on a survivor. The acceptance claim is that this costs at most 10%
//! throughput at a sane cadence, so opting shards into migration is not
//! a performance decision.
//!
//! Not a criterion harness: the gated quantity is a ratio of two
//! measurements that must share a process (same platform caches, same
//! thermal state, interleaved rounds), so the bench writes its perf-gate
//! record directly, mirroring the criterion shim's `BENCH_*.json` format
//! with `"lower_is_better":true` and a per-record `"tolerance"`.
//!
//! Honours the shared bench environment:
//! * `ULP_BENCH_QUICK=1` — fewer rounds (CI smoke sizing).
//! * `ULP_BENCH_JSON_DIR=<dir>` — write `BENCH_checkpoint_overhead_*.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use ulp_kernels::{run_benchmark_on, Benchmark, WorkloadConfig};
use ulp_platform::PlatformConfig;
use ulp_service::{JobSpec, ServiceConfig, SimService};

/// One worker per pool: the uniform cache-hit path is deterministic, so
/// round times are tight enough to gate a 10% ratio.
const WORKERS: usize = 1;

/// The acceptance bound: a checkpointed job may cost at most 10% over an
/// identical job without checkpoints. The record carries this tolerance
/// so the gate applies it instead of its 20% default.
const RATIO_TOLERANCE: f64 = 0.10;

/// Checkpoints per job: enough that the snapshot cost is really in the
/// measurement (one per job would mostly gate the cadence arithmetic),
/// few enough to model a sane migration cadence rather than a pathological
/// snapshot-every-cycle configuration.
const CHECKPOINTS_PER_JOB: u64 = 4;

/// Uniform 2-core SQRT32 jobs on the quick-test workload — long enough
/// that a per-job snapshot cadence is meaningful, identical so every job
/// after the first hits the platform cache.
fn workload() -> Arc<WorkloadConfig> {
    Arc::new(WorkloadConfig::quick_test())
}

fn specs(jobs: usize, workload: &Arc<WorkloadConfig>, every: Option<u64>) -> Vec<JobSpec> {
    (0..jobs)
        .map(|_| {
            let spec = JobSpec::new(Benchmark::Sqrt32, 2, workload.clone());
            match every {
                Some(cycles) => spec.checkpoint_every(cycles),
                None => spec,
            }
        })
        .collect()
}

/// One batch: submit every spec, stream every result back.
fn run_batch(service: &mut SimService, specs: &[JobSpec]) {
    for spec in specs {
        service
            .submit(spec.clone())
            .expect("unbounded queue admits");
    }
    for _ in 0..specs.len() {
        service
            .recv()
            .expect("job completes")
            .outcome
            .expect("job runs");
    }
}

/// Writes one perf-gate record, mirroring the criterion shim's escaping
/// and `BENCH_<label>.json` naming (the label is ASCII-clean, so the
/// shim's collision hash is unnecessary).
fn emit_record(dir: &std::path::Path, label: &str, value: f64, tolerance: f64) {
    let sanitized: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let record = format!(
        "{{\"label\":\"{label}\",\"value\":{value:.4},\"lower_is_better\":true,\
         \"tolerance\":{tolerance}}}\n"
    );
    let path = dir.join(format!("BENCH_{sanitized}.json"));
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, record)) {
        eprintln!("checkpoint_overhead: cannot write {}: {e}", path.display());
    }
}

fn main() {
    let quick = std::env::var_os("ULP_BENCH_QUICK").is_some();
    let (jobs, rounds) = if quick { (8, 100) } else { (8, 200) };
    let workload = workload();
    // Cadence from the job's real cycle count — on the same 2-core
    // platform shape the jobs run on — so the checkpointed side takes
    // CHECKPOINTS_PER_JOB snapshots per job regardless of workload sizing.
    let golden = run_benchmark_on(
        Benchmark::Sqrt32,
        PlatformConfig::paper(true).with_cores(2),
        &workload,
    )
    .expect("golden run");
    let every = (golden.stats.cycles / CHECKPOINTS_PER_JOB).max(1);
    let plain_grid = specs(jobs, &workload, None);
    let ckpt_grid = specs(jobs, &workload, Some(every));

    let mut plain = SimService::start(ServiceConfig::builder().workers(WORKERS).build());
    let mut ckpt = SimService::start(ServiceConfig::builder().workers(WORKERS).build());

    // Warm both pools (platform construction is one-off and identical),
    // then measure in adjacent pairs: machine noise drifts over time, so
    // a round's plain and checkpointed batches share the same noise phase
    // and their *ratio* is far tighter than either absolute time.
    run_batch(&mut plain, &plain_grid);
    run_batch(&mut ckpt, &ckpt_grid);
    let mut best_plain = Duration::MAX;
    let mut best_ckpt = Duration::MAX;
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate which pool runs first so any systematic first/second
        // position bias cancels across rounds instead of loading one side
        // of every ratio.
        let (plain_elapsed, ckpt_elapsed) = if round.is_multiple_of(2) {
            let t = Instant::now();
            run_batch(&mut plain, &plain_grid);
            let plain_elapsed = t.elapsed();
            let t = Instant::now();
            run_batch(&mut ckpt, &ckpt_grid);
            (plain_elapsed, t.elapsed())
        } else {
            let t = Instant::now();
            run_batch(&mut ckpt, &ckpt_grid);
            let ckpt_elapsed = t.elapsed();
            let t = Instant::now();
            run_batch(&mut plain, &plain_grid);
            (t.elapsed(), ckpt_elapsed)
        };
        best_plain = best_plain.min(plain_elapsed);
        best_ckpt = best_ckpt.min(ckpt_elapsed);
        ratios.push(ckpt_elapsed.as_secs_f64() / plain_elapsed.as_secs_f64());
    }
    // The checkpointed pool must actually have been snapshotting, or the
    // ratio gates nothing.
    let stats = ckpt.finish();
    plain.finish();
    assert!(
        stats.checkpoints_taken >= (rounds as u64 + 1) * jobs as u64 * CHECKPOINTS_PER_JOB,
        "checkpointed pool took too few snapshots: {}",
        stats.checkpoints_taken
    );
    assert_eq!(stats.jobs_migrated, 0, "no migration traffic in this bench");

    // Interquartile mean of the per-round ratios: drops the rounds where
    // one side caught a descheduling spike, averages the stable middle.
    ratios.sort_by(|a, b| a.total_cmp(b));
    let quartile = ratios.len() / 4;
    let middle = &ratios[quartile..ratios.len() - quartile];
    let ratio = middle.iter().sum::<f64>() / middle.len() as f64;

    println!(
        "checkpoint_overhead: {} jobs x {} rounds on {} workers, {} snapshots/job \
         (every {} cycles): plain {:.3} ms, checkpointed {:.3} ms, ratio {:.4}",
        jobs,
        rounds,
        WORKERS,
        CHECKPOINTS_PER_JOB,
        every,
        best_plain.as_secs_f64() * 1e3,
        best_ckpt.as_secs_f64() * 1e3,
        ratio,
    );

    if let Some(dir) = std::env::var_os("ULP_BENCH_JSON_DIR") {
        emit_record(
            &std::path::PathBuf::from(dir),
            "checkpoint_overhead/ratio",
            ratio,
            RATIO_TOLERANCE,
        );
    }
}

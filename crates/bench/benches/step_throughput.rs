//! Criterion benchmark of the cycle engine itself: simulated cycles per
//! second of `Platform::step` at 2/4/8 cores, bare and with observers
//! attached. This tracks the allocation-free `CycleBuffers` hot path —
//! a regression that reintroduces per-cycle allocation shows up here
//! directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ulp_isa::asm::assemble;
use ulp_platform::{LockstepWidth, Observer, Platform, PlatformConfig, VcdTracer};

/// Cycles stepped per benchmark iteration.
const CYCLES_PER_ITER: u64 = 1_000;

/// An endless SPMD workload touching every engine phase: per-core
/// data-dependent spin, a shared `SINC`/`SDEC` barrier, loads and stores.
/// The cores never halt, so the platform can be stepped indefinitely.
const SPIN_SRC: &str = "
        rdid r1
        mov  r2, r1
        shl  r2, #11       ; private bank base
        li   r3, 18432     ; sync array base
        wrsync r3
        mov  r4, r1
loop:   sinc #0
        add  r4, r1
        addi r4, #3
        mov  r5, r4
        movi r0, #7
        and  r5, r0
        inc  r5
spin:   addi r5, #-1       ; data-dependent 1..8 rounds
        bne  spin
        st   r4, [r2]
        ld   r0, [r2]
        sdec #0
        br   loop";

fn prepared_platform(cores: usize) -> Platform {
    let program = assemble(SPIN_SRC).expect("benchmark program assembles");
    let cfg = PlatformConfig::paper_with_sync()
        .with_cores(cores)
        .with_max_cycles(u64::MAX);
    let mut p = Platform::new(cfg).expect("valid config");
    p.load_program(&program);
    // Warm past the prologue so every iteration measures steady state.
    for _ in 0..64 {
        p.step();
    }
    p
}

fn bench_step_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(CYCLES_PER_ITER));

    for cores in [2usize, 4, 8] {
        let mut platform = prepared_platform(cores);
        group.bench_function(BenchmarkId::new("bare", cores), |b| {
            b.iter(|| {
                for _ in 0..CYCLES_PER_ITER {
                    platform.step();
                }
                platform.cycle()
            })
        });

        let mut platform = prepared_platform(cores);
        let mut width = LockstepWidth::new();
        group.bench_function(BenchmarkId::new("observed", cores), |b| {
            b.iter(|| {
                // The tracer lives one iteration, so its change-dump text
                // stays bounded (~one sample's worth) instead of growing
                // across the whole measurement and skewing later samples.
                let mut vcd = VcdTracer::new(&platform);
                let mut observers: [&mut dyn Observer; 2] = [&mut width, &mut vcd];
                for _ in 0..CYCLES_PER_ITER {
                    platform.step_with(&mut observers);
                }
                platform.cycle()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step_throughput);
criterion_main!(benches);

//! Criterion benchmark of the cycle engine itself: simulated cycles per
//! second at 2/4/8 cores, in four configurations:
//!
//! * `bare` — `Platform::step`, the interpreter;
//! * `observed` — `Platform::step_with(&mut [])`: the *empty*-observer
//!   fast path, which must stay within 10% of `bare`;
//! * `instrumented` — `step_with` carrying real observers (lockstep
//!   width + VCD), the full observer dispatch cost;
//! * `compiled` — `Platform::step_tiered` on the compiled hot-block
//!   tier, replaying translated traces with interpreter fallback.
//!
//! A regression that reintroduces per-cycle allocation or observer
//! dispatch on the bare path shows up here directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ulp_isa::asm::assemble;
use ulp_platform::{ExecTier, LockstepWidth, Observer, Platform, PlatformConfig, VcdTracer};

/// Cycles stepped per benchmark iteration.
const CYCLES_PER_ITER: u64 = 1_000;

/// Cycles advanced per compiled-tier iteration (see the compiled bench).
const COMPILED_CYCLES_PER_ITER: u64 = 10_000;

/// An endless SPMD workload touching every engine phase: per-core
/// data-dependent spin, a shared `SINC`/`SDEC` barrier, loads and stores.
/// The cores never halt, so the platform can be stepped indefinitely.
const SPIN_SRC: &str = "
        rdid r1
        mov  r2, r1
        shl  r2, #11       ; private bank base
        li   r3, 18432     ; sync array base
        wrsync r3
        mov  r4, r1
loop:   sinc #0
        add  r4, r1
        addi r4, #3
        mov  r5, r4
        movi r0, #7
        and  r5, r0
        inc  r5
spin:   addi r5, #-1       ; data-dependent 1..8 rounds
        bne  spin
        st   r4, [r2]
        ld   r0, [r2]
        sdec #0
        br   loop";

/// An endless lockstep hot loop — straight-line ALU work plus a backward
/// branch, the inner-loop shape of the paper kernels and the compiled
/// tier's target. (`SPIN_SRC` deliberately diverges and synchronizes, so
/// it measures the interpreter and the fallback path; this one measures
/// translated-trace execution.)
const LOCKSTEP_SRC: &str = "
        rdid r1
        mov  r2, r1
        shl  r2, #11       ; private bank base
loop:   addi r4, #3
        mov  r5, r4
        movi r0, #7
        and  r5, r0
        add  r4, r5
        inc  r4
        br   loop";

fn prepared_platform_on(src: &str, cores: usize, tier: ExecTier) -> Platform {
    let program = assemble(src).expect("benchmark program assembles");
    let cfg = PlatformConfig::paper_with_sync()
        .with_cores(cores)
        .with_max_cycles(u64::MAX)
        .with_exec_tier(tier);
    let mut p = Platform::new(cfg).expect("valid config");
    p.load_program(&program);
    // Warm past the prologue (and, on the compiled tier, past block
    // discovery and translation) so every iteration measures steady state.
    for _ in 0..512 {
        p.step_tiered();
    }
    p
}

fn bench_step_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(CYCLES_PER_ITER));

    for cores in [2usize, 4, 8] {
        let mut platform = prepared_platform_on(SPIN_SRC, cores, ExecTier::Interpreted);
        group.bench_function(BenchmarkId::new("bare", cores), |b| {
            b.iter(|| {
                for _ in 0..CYCLES_PER_ITER {
                    platform.step();
                }
                platform.cycle()
            })
        });

        // Zero observers attached: `step_with(&mut [])` must ride the
        // empty-observer fast path and stay within 10% of `bare`.
        let mut platform = prepared_platform_on(SPIN_SRC, cores, ExecTier::Interpreted);
        group.bench_function(BenchmarkId::new("observed", cores), |b| {
            b.iter(|| {
                for _ in 0..CYCLES_PER_ITER {
                    platform.step_with(&mut []);
                }
                platform.cycle()
            })
        });

        let mut platform = prepared_platform_on(SPIN_SRC, cores, ExecTier::Interpreted);
        let mut width = LockstepWidth::new();
        group.bench_function(BenchmarkId::new("instrumented", cores), |b| {
            b.iter(|| {
                // The tracer lives one iteration, so its change-dump text
                // stays bounded (~one sample's worth) instead of growing
                // across the whole measurement and skewing later samples.
                let mut vcd = VcdTracer::new(&platform);
                let mut observers: [&mut dyn Observer; 2] = [&mut width, &mut vcd];
                for _ in 0..CYCLES_PER_ITER {
                    platform.step_with(&mut observers);
                }
                platform.cycle()
            })
        });

        // A compiled step may advance a whole lockstep batch, so the
        // iteration targets a cycle count instead of a step count (the
        // larger budget keeps the ≤ one-batch overshoot negligible).
        let mut platform = prepared_platform_on(LOCKSTEP_SRC, cores, ExecTier::Compiled);
        group.throughput(Throughput::Elements(COMPILED_CYCLES_PER_ITER));
        group.bench_function(BenchmarkId::new("compiled", cores), |b| {
            b.iter(|| {
                let target = platform.cycle() + COMPILED_CYCLES_PER_ITER;
                while platform.cycle() < target {
                    platform.step_tiered();
                }
                platform.cycle()
            })
        });
        group.throughput(Throughput::Elements(CYCLES_PER_ITER));
    }
    group.finish();
}

criterion_group!(benches, bench_step_throughput);
criterion_main!(benches);

//! Latency benchmark of the batch simulation service: drive a *bounded*
//! [`SimService`] to saturation with a mixed-priority grid and record the
//! end-to-end latency distribution (queue wait + run time) the pool's own
//! [`ServiceStats`] report. Where `service_throughput` tracks how many
//! jobs per second the scheduler moves, this tracks what one job *feels*:
//! the p50 tells the common case, the p95 the tail that determines usable
//! capacity under sustained traffic.
//!
//! Not a criterion harness: criterion measures iteration wall time, but
//! the quantity gated here is the per-job latency percentile, which only
//! the service itself can attribute (queue wait is accumulated inside the
//! pool). The bench therefore writes its `BENCH_*.json` records directly,
//! mirroring the criterion shim's format with two extras the perf gate
//! understands: `"lower_is_better":true` (latency regressions are
//! *increases*) and a per-record `"tolerance"` (latency tails are noisier
//! than throughput means, so they get more headroom than the default 20%).
//!
//! Honours the shared bench environment:
//! * `ULP_BENCH_QUICK=1` — fewer jobs (CI smoke sizing).
//! * `ULP_BENCH_JSON_DIR=<dir>` — write `BENCH_service_latency_*.json`.

use std::sync::Arc;
use std::time::Duration;
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_service::{JobSpec, Priority, ServiceConfig, SimService};

/// Workers in the pool; small so queueing (not just run time) is visible.
const WORKERS: usize = 2;

/// Queue bound: deep enough to keep every worker busy, shallow enough
/// that the blocking submit path is really exercised at saturation.
const QUEUE_CAPACITY: usize = 8;

/// Per-record tolerances for the gate: the median is fairly stable, the
/// tail much noisier under CI scheduling jitter.
const P50_TOLERANCE: f64 = 0.60;
const P95_TOLERANCE: f64 = 0.80;

/// The smallest workload the kernels support, so per-job latency is
/// dominated by service mechanics plus a short simulation — the shape of
/// a real-time per-window analysis job, not an offline batch.
fn tiny_workload() -> Arc<WorkloadConfig> {
    let mut w = WorkloadConfig::quick_test();
    w.n = 16;
    Arc::new(w)
}

/// One mixed-grid job: mostly cheap 2-core cells with a heavier 8-core
/// cell every third job, alternating designs, and every fourth job at
/// high priority — the traffic mix the scheduler is hardened for.
fn spec(i: usize, workload: &Arc<WorkloadConfig>) -> JobSpec {
    let cores = if i.is_multiple_of(3) { 8 } else { 2 };
    let priority = if i.is_multiple_of(4) {
        Priority::High
    } else {
        Priority::Normal
    };
    JobSpec::new(Benchmark::Sqrt32, cores, workload.clone())
        .with_sync(i.is_multiple_of(2))
        .priority(priority)
}

/// Writes one perf-gate record, mirroring the criterion shim's escaping
/// and `BENCH_<label>.json` naming (labels here are ASCII-clean, so the
/// shim's collision hash is unnecessary).
fn emit_record(dir: &std::path::Path, label: &str, value_us: f64, tolerance: f64) {
    let sanitized: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let record = format!(
        "{{\"label\":\"{label}\",\"value\":{value_us:.3},\"lower_is_better\":true,\
         \"tolerance\":{tolerance}}}\n"
    );
    let path = dir.join(format!("BENCH_{sanitized}.json"));
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, record)) {
        eprintln!("service_latency: cannot write {}: {e}", path.display());
    }
}

fn as_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let quick = std::env::var_os("ULP_BENCH_QUICK").is_some();
    let jobs: usize = if quick { 72 } else { 288 };
    let workload = tiny_workload();

    let mut service = SimService::start(
        ServiceConfig::builder()
            .workers(WORKERS)
            .queue_capacity(QUEUE_CAPACITY)
            .build(),
    );
    // Warm the platform caches first so the measured distribution reflects
    // steady-state traffic, not the one-off platform constructions.
    for i in 0..(WORKERS * 2) {
        service
            .submit_blocking(spec(i, &workload))
            .expect("pool alive");
    }
    let mut warmed = 0;
    while warmed < WORKERS * 2 {
        service.recv().expect("warm-up job completes");
        warmed += 1;
    }
    let warm_samples = service.stats().latency.samples;

    // Saturate: the blocking submit path throttles this loop to the
    // workers' claim rate once the backlog hits capacity, so the queue
    // stays at the watermark and queue wait is a real component of every
    // job's latency.
    let mut completed = 0u64;
    for i in 0..jobs {
        service
            .submit_blocking(spec(i, &workload))
            .expect("pool alive");
        // Drain opportunistically so the result channel never balloons.
        while let Some(result) = service.try_recv() {
            result.outcome.expect("job runs");
            completed += 1;
        }
    }
    while let Some(result) = service.recv() {
        result.outcome.expect("job runs");
        completed += 1;
    }
    assert_eq!(completed, jobs as u64, "every submitted job completes");

    let stats = service.finish();
    assert_eq!(stats.latency.samples, warm_samples + jobs as u64);
    assert_eq!(stats.rejections, 0, "the blocking path never rejects");

    println!(
        "service_latency: {} jobs on {} workers (queue capacity {}): \
         p50 {:.1} us, p95 {:.1} us, max {:.1} us ({} steal events, {} deadline misses)",
        jobs,
        stats.workers,
        QUEUE_CAPACITY,
        as_us(stats.latency.p50),
        as_us(stats.latency.p95),
        as_us(stats.latency.max),
        stats.steals,
        stats.deadline_misses,
    );

    if let Some(dir) = std::env::var_os("ULP_BENCH_JSON_DIR") {
        let dir = std::path::PathBuf::from(dir);
        emit_record(
            &dir,
            "service_latency/p50_us",
            as_us(stats.latency.p50),
            P50_TOLERANCE,
        );
        emit_record(
            &dir,
            "service_latency/p95_us",
            as_us(stats.latency.p95),
            P95_TOLERANCE,
        );
    }
}

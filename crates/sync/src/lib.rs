//! # ulp-sync — the hardware synchronizer
//!
//! This crate models the light-weight hardware synchronizer that is the
//! core contribution of Dogan et al. (DATE 2013, Section IV-A). Together
//! with the `SINC`/`SDEC` instruction-set extension it implements check-in
//! and check-out points around data-dependent code sections, so that cores
//! leaving a section wait for their peers and resume in lockstep.
//!
//! ## Protocol
//!
//! For every synchronization point, one data-memory word at
//! `RSYNC + index` holds:
//!
//! ```text
//! bit 15..8: core counter  — cores currently inside the section
//! bit  7..0: identity flags — one bit per core that checked in
//! ```
//!
//! * **Check-in** (`SINC`): set the core's identity flag, increment the
//!   counter.
//! * **Check-out** (`SDEC`): decrement the counter, then sleep until the
//!   counter reaches zero.
//! * When a check-out drives the counter to zero, the synchronizer wakes
//!   every flagged core and clears the word, and execution continues in
//!   lockstep.
//!
//! Requests from several cores for the *same* point in the same cycle are
//! **merged** and executed in a single two-cycle read-modify-write; the
//! sync word is locked against ordinary accesses for the duration (the
//! core's *lock* output, Section IV-B-c).
//!
//! ## Example
//!
//! ```
//! use ulp_mem::{BankedMemory, BankMapping};
//! use ulp_cpu::{SyncKind, SyncRequest};
//! use ulp_sync::{sync_word, Synchronizer};
//!
//! let mut dm = BankedMemory::new(1024, 4, BankMapping::Blocked);
//! let mut sync = Synchronizer::new();
//! let req = |core, kind| (core, SyncRequest { index: 0, word_addr: 64, kind });
//!
//! // Two cores check in together: one merged 2-cycle operation.
//! let ev = sync.step(&[req(0, SyncKind::CheckIn), req(1, SyncKind::CheckIn)], &mut dm);
//! assert_eq!(ev.accepted, vec![0, 1]);
//! let ev = sync.step(&[], &mut dm);
//! assert_eq!(ev.completed.len(), 2);
//! assert_eq!(sync_word::counter(dm.peek(64)), 2);
//! ```

use std::fmt;
use ulp_cpu::{SyncKind, SyncRequest};
use ulp_mem::BankedMemory;

#[cfg(test)]
mod proptests;

/// Helpers for the layout of a synchronization word.
pub mod sync_word {
    /// Builds a sync word from identity flags and the core counter.
    pub fn make(flags: u8, counter: u8) -> u16 {
        (counter as u16) << 8 | flags as u16
    }

    /// The identity-flag byte (bit *n* set = core *n* checked in).
    pub fn flags(word: u16) -> u8 {
        (word & 0x00FF) as u8
    }

    /// The core counter (cores currently inside the section).
    pub fn counter(word: u16) -> u8 {
        (word >> 8) as u8
    }
}

/// Activity counters of the synchronizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Check-in requests received.
    pub checkin_requests: u64,
    /// Check-out requests received.
    pub checkout_requests: u64,
    /// Two-cycle read-modify-write operations performed (batches).
    pub batches: u64,
    /// Requests merged into an already-forming batch beyond the first
    /// (accesses saved by merging).
    pub merged: u64,
    /// Cores woken by barrier releases.
    pub wakeups: u64,
    /// Barrier releases (counter reached zero).
    pub releases: u64,
    /// Cycles the synchronizer was busy (drives its power share).
    pub busy_cycles: u64,
    /// Requests stalled because the synchronizer was busy or another
    /// point's batch won arbitration.
    pub stalled_requests: u64,
    /// Check-outs that found the counter already at zero (unbalanced
    /// program; clamped).
    pub underflows: u64,
}

impl SyncStats {
    /// Adds another synchronizer's counters into this one (multi-run
    /// aggregates, e.g. summing shard statistics). Kept next to the
    /// fields so a new counter cannot be forgotten here.
    pub fn merge(&mut self, other: &SyncStats) {
        self.checkin_requests += other.checkin_requests;
        self.checkout_requests += other.checkout_requests;
        self.batches += other.batches;
        self.merged += other.merged;
        self.wakeups += other.wakeups;
        self.releases += other.releases;
        self.busy_cycles += other.busy_cycles;
        self.stalled_requests += other.stalled_requests;
        self.underflows += other.underflows;
    }
}

/// Events produced by one synchronizer cycle, to be applied to the cores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncEvents {
    /// Cores whose request was accepted this cycle (they spend this cycle
    /// and the next inside the synchronizer).
    pub accepted: Vec<usize>,
    /// Cores whose operation completed at the end of this cycle, with the
    /// sleep decision (`true` = check-out must sleep and await the wake).
    pub completed: Vec<(usize, bool)>,
    /// Sleeping cores to wake (barrier released). Disjoint from
    /// `completed`.
    pub wake: Vec<usize>,
}

impl SyncEvents {
    /// True when nothing happened this cycle.
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty() && self.completed.is_empty() && self.wake.is_empty()
    }
}

/// One in-flight merged read-modify-write. The merged batch itself lives
/// in [`Synchronizer::batch`], reused across operations.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    word_addr: u16,
    /// Remaining cycles (2 at accept; completes when it reaches 0).
    cycles_left: u8,
    /// Word value latched at the read cycle.
    latched: u16,
}

/// The complete mutable state of one [`Synchronizer`], exported by
/// [`Synchronizer::save`] and re-applied by
/// [`Synchronizer::load_snapshot`]. The merged batch *is* state (it
/// persists across the two-cycle read-modify-write and drives the commit),
/// so it is captured alongside the in-flight operation and the counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncSnapshot {
    /// In-flight RMW as `(word_addr, cycles_left, latched)`, if any.
    pub inflight: Option<(u16, u8, u16)>,
    /// The merged `(core, check_in)` batch of the in-flight operation
    /// (`check_in` is `true` for `SINC`, `false` for `SDEC`).
    pub batch: Vec<(usize, bool)>,
    /// Aggregate activity counters.
    pub stats: SyncStats,
}

/// The hardware synchronizer (Fig. 1 of the paper).
///
/// Driven by the platform once per cycle via [`Synchronizer::step`] (or
/// the allocation-free [`Synchronizer::step_into`]); see the crate-level
/// documentation for the protocol.
#[derive(Debug, Clone, Default)]
pub struct Synchronizer {
    inflight: Option<InFlight>,
    /// The merged `(core, kind)` batch of the in-flight operation; kept on
    /// the synchronizer so its allocation is reused across operations.
    batch: Vec<(usize, SyncKind)>,
    stats: SyncStats,
}

impl fmt::Display for Synchronizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inflight {
            Some(op) => write!(
                f,
                "synchronizer busy: word {:#06x}, {} merged, {} cycles left",
                op.word_addr,
                self.batch.len(),
                op.cycles_left
            ),
            None => write!(f, "synchronizer idle"),
        }
    }
}

impl Synchronizer {
    /// Creates an idle synchronizer.
    pub fn new() -> Synchronizer {
        Synchronizer::default()
    }

    /// Whether a read-modify-write is in flight.
    pub fn is_busy(&self) -> bool {
        self.inflight.is_some()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// Returns the synchronizer to its idle reset state (no operation in
    /// flight, statistics cleared), keeping the batch allocation.
    pub fn reset(&mut self) {
        self.inflight = None;
        self.batch.clear();
        self.stats = SyncStats::default();
    }

    /// Exports the synchronizer's complete mutable state for
    /// checkpointing — including a read-modify-write caught mid-flight.
    pub fn save(&self) -> SyncSnapshot {
        SyncSnapshot {
            inflight: self
                .inflight
                .map(|op| (op.word_addr, op.cycles_left, op.latched)),
            batch: self
                .batch
                .iter()
                .map(|&(core, kind)| (core, kind == SyncKind::CheckIn))
                .collect(),
            stats: self.stats,
        }
    }

    /// Re-applies a snapshot taken by [`Synchronizer::save`], reusing the
    /// batch allocation.
    pub fn load_snapshot(&mut self, snapshot: &SyncSnapshot) {
        self.inflight = snapshot
            .inflight
            .map(|(word_addr, cycles_left, latched)| InFlight {
                word_addr,
                cycles_left,
                latched,
            });
        self.batch.clear();
        self.batch
            .extend(snapshot.batch.iter().map(|&(core, check_in)| {
                (
                    core,
                    if check_in {
                        SyncKind::CheckIn
                    } else {
                        SyncKind::CheckOut
                    },
                )
            }));
        self.stats = snapshot.stats;
    }

    /// Advances the synchronizer by one cycle, allocating fresh event
    /// buffers. Convenience wrapper around [`Synchronizer::step_into`].
    pub fn step(
        &mut self,
        requests: &[(usize, SyncRequest)],
        dmem: &mut BankedMemory,
    ) -> SyncEvents {
        let mut events = SyncEvents::default();
        self.step_into(requests, dmem, &mut events);
        events
    }

    /// Advances the synchronizer by one cycle, writing the cycle's events
    /// into `events` (cleared first) so a caller that reuses the buffer
    /// runs allocation-free in steady state.
    ///
    /// `requests` holds the `SINC`/`SDEC` requests presented by cores this
    /// cycle (at most one per core). Cores in `accepted` consumed the cycle
    /// inside the synchronizer; requesters not accepted must record a sync
    /// stall. Completion events are edge-triggered at the end of the cycle.
    pub fn step_into(
        &mut self,
        requests: &[(usize, SyncRequest)],
        dmem: &mut BankedMemory,
        events: &mut SyncEvents,
    ) {
        events.accepted.clear();
        events.completed.clear();
        events.wake.clear();

        if let Some(op) = &mut self.inflight {
            // Busy: all new requesters stall.
            self.stats.stalled_requests += requests.len() as u64;
            self.stats.busy_cycles += 1;
            op.cycles_left -= 1;
            if op.cycles_left == 0 {
                let op = self.inflight.take().expect("checked above");
                self.commit(op, dmem, events);
            }
            return;
        }

        if requests.is_empty() {
            return;
        }

        // Idle: arbitrate. The point requested by the lowest-numbered core
        // wins; every same-cycle request for the same word merges into the
        // batch. Others stall and retry.
        let winner_addr = requests
            .iter()
            .min_by_key(|(core, _)| *core)
            .expect("non-empty")
            .1
            .word_addr;
        self.batch.clear();
        for (core, req) in requests {
            if req.word_addr == winner_addr {
                match req.kind {
                    SyncKind::CheckIn => self.stats.checkin_requests += 1,
                    SyncKind::CheckOut => self.stats.checkout_requests += 1,
                }
                self.batch.push((*core, req.kind));
            } else {
                self.stats.stalled_requests += 1;
            }
        }
        self.batch.sort_unstable_by_key(|(core, _)| *core);
        events
            .accepted
            .extend(self.batch.iter().map(|(core, _)| *core));
        self.stats.batches += 1;
        self.stats.merged += (self.batch.len() - 1) as u64;
        self.stats.busy_cycles += 1;

        // Read cycle: latch the word and lock it against ordinary traffic
        // (the cores' lock outputs are asserted).
        dmem.lock_word(winner_addr);
        let latched = dmem.read(winner_addr);
        self.inflight = Some(InFlight {
            word_addr: winner_addr,
            cycles_left: 1,
            latched,
        });
    }

    /// Write cycle: applies the merged update and produces completions.
    fn commit(&mut self, op: InFlight, dmem: &mut BankedMemory, events: &mut SyncEvents) {
        let mut flags = sync_word::flags(op.latched);
        let mut counter = sync_word::counter(op.latched) as i32;
        let mut any_checkout = false;
        for (core, kind) in &self.batch {
            match kind {
                SyncKind::CheckIn => {
                    flags |= 1u8 << (core % 8);
                    counter += 1;
                }
                SyncKind::CheckOut => {
                    any_checkout = true;
                    if counter == 0 {
                        self.stats.underflows += 1;
                    } else {
                        counter -= 1;
                    }
                }
            }
        }

        if any_checkout && counter == 0 {
            // Barrier released: wake every flagged core that is not
            // completing right now, clear the word.
            self.stats.releases += 1;
            for bit in 0..8 {
                let core = bit as usize;
                if flags & (1 << bit) != 0 && !self.batch.iter().any(|(c, _)| *c == core) {
                    events.wake.push(core);
                    self.stats.wakeups += 1;
                }
            }
            dmem.write(op.word_addr, 0);
            events
                .completed
                .extend(self.batch.iter().map(|(core, _)| (*core, false)));
        } else {
            dmem.write(op.word_addr, sync_word::make(flags, counter.min(255) as u8));
            events.completed.extend(
                self.batch
                    .iter()
                    .map(|(core, kind)| (*core, matches!(kind, SyncKind::CheckOut))),
            );
        }
        self.batch.clear();
        dmem.unlock_word(op.word_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_mem::BankMapping;

    fn dm() -> BankedMemory {
        BankedMemory::new(1024, 4, BankMapping::Blocked)
    }

    fn checkin(core: usize, addr: u16) -> (usize, SyncRequest) {
        (
            core,
            SyncRequest {
                index: (addr & 0xFF) as u8,
                word_addr: addr,
                kind: SyncKind::CheckIn,
            },
        )
    }

    fn checkout(core: usize, addr: u16) -> (usize, SyncRequest) {
        (
            core,
            SyncRequest {
                index: (addr & 0xFF) as u8,
                word_addr: addr,
                kind: SyncKind::CheckOut,
            },
        )
    }

    #[test]
    fn word_layout() {
        let w = sync_word::make(0b1010_0001, 3);
        assert_eq!(sync_word::flags(w), 0b1010_0001);
        assert_eq!(sync_word::counter(w), 3);
    }

    #[test]
    fn merged_checkin_takes_two_cycles() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        let ev = s.step(&[checkin(0, 100), checkin(1, 100), checkin(5, 100)], &mut m);
        assert_eq!(ev.accepted, vec![0, 1, 5]);
        assert!(ev.completed.is_empty());
        assert!(s.is_busy());
        assert!(m.is_locked(100), "word locked during RMW");

        let ev = s.step(&[], &mut m);
        assert_eq!(ev.completed, vec![(0, false), (1, false), (5, false)]);
        assert!(!s.is_busy());
        assert!(!m.is_locked(100));
        assert_eq!(m.peek(100), sync_word::make(0b0010_0011, 3));
        assert_eq!(s.stats().merged, 2);
        assert_eq!(s.stats().batches, 1);
    }

    #[test]
    fn checkout_sleeps_until_last() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        // Three cores in the section.
        s.step(&[checkin(0, 64), checkin(1, 64), checkin(2, 64)], &mut m);
        s.step(&[], &mut m);

        // Core 1 checks out first: must sleep.
        s.step(&[checkout(1, 64)], &mut m);
        let ev = s.step(&[], &mut m);
        assert_eq!(ev.completed, vec![(1, true)]);
        assert_eq!(sync_word::counter(m.peek(64)), 2);
        assert_eq!(
            sync_word::flags(m.peek(64)),
            0b0111,
            "flags persist until release"
        );

        // Cores 0 and 2 check out together: barrier releases, core 1 wakes.
        s.step(&[checkout(0, 64), checkout(2, 64)], &mut m);
        let ev = s.step(&[], &mut m);
        assert_eq!(ev.completed, vec![(0, false), (2, false)]);
        assert_eq!(ev.wake, vec![1]);
        assert_eq!(m.peek(64), 0, "word cleared at release");
        assert_eq!(s.stats().releases, 1);
        assert_eq!(s.stats().wakeups, 1);
    }

    #[test]
    fn lone_core_passes_straight_through() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        s.step(&[checkin(3, 10)], &mut m);
        s.step(&[], &mut m);
        s.step(&[checkout(3, 10)], &mut m);
        let ev = s.step(&[], &mut m);
        assert_eq!(ev.completed, vec![(3, false)], "no sleep when last out");
        assert!(ev.wake.is_empty());
        assert_eq!(m.peek(10), 0);
    }

    #[test]
    fn mixed_batch_checkin_and_checkout() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        s.step(&[checkin(0, 20)], &mut m);
        s.step(&[], &mut m);
        // Core 0 leaves while core 1 enters, same cycle, same point.
        s.step(&[checkout(0, 20), checkin(1, 20)], &mut m);
        let ev = s.step(&[], &mut m);
        // Counter: 1 - 1 + 1 = 1 -> core 0 sleeps (core 1 still inside).
        assert!(ev.completed.contains(&(0, true)));
        assert!(ev.completed.contains(&(1, false)));
        assert_eq!(sync_word::counter(m.peek(20)), 1);

        // Core 1 leaves: releases core 0.
        s.step(&[checkout(1, 20)], &mut m);
        let ev = s.step(&[], &mut m);
        assert_eq!(ev.wake, vec![0]);
    }

    #[test]
    fn busy_synchronizer_stalls_new_requests() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        let ev = s.step(&[checkin(0, 30)], &mut m);
        assert_eq!(ev.accepted, vec![0]);
        // Arrives during the write cycle: must stall and retry.
        let ev = s.step(&[checkin(1, 30)], &mut m);
        assert!(ev.accepted.is_empty());
        assert_eq!(ev.completed, vec![(0, false)]);
        assert_eq!(s.stats().stalled_requests, 1);
        // Retry is accepted now.
        let ev = s.step(&[checkin(1, 30)], &mut m);
        assert_eq!(ev.accepted, vec![1]);
    }

    #[test]
    fn distinct_points_serialize() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        let ev = s.step(&[checkin(0, 40), checkin(1, 41)], &mut m);
        assert_eq!(ev.accepted, vec![0], "lowest core's point wins");
        assert_eq!(s.stats().stalled_requests, 1);
        s.step(&[], &mut m);
        let ev = s.step(&[checkin(1, 41)], &mut m);
        assert_eq!(ev.accepted, vec![1]);
    }

    #[test]
    fn underflow_is_clamped_and_counted() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        s.step(&[checkout(0, 50)], &mut m);
        let ev = s.step(&[], &mut m);
        // Counter was already zero: release semantics, no sleep.
        assert_eq!(ev.completed, vec![(0, false)]);
        assert_eq!(s.stats().underflows, 1);
        assert_eq!(m.peek(50), 0);
    }

    #[test]
    fn dm_traffic_is_one_read_one_write_per_batch() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        s.step(
            &[
                checkin(0, 60),
                checkin(1, 60),
                checkin(2, 60),
                checkin(3, 60),
            ],
            &mut m,
        );
        s.step(&[], &mut m);
        assert_eq!(m.stats().bank_reads, 1);
        assert_eq!(m.stats().bank_writes, 1);
    }

    #[test]
    fn full_eight_core_barrier() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        let ins: Vec<_> = (0..8).map(|c| checkin(c, 70)).collect();
        s.step(&ins, &mut m);
        s.step(&[], &mut m);
        assert_eq!(sync_word::counter(m.peek(70)), 8);
        assert_eq!(sync_word::flags(m.peek(70)), 0xFF);

        // Seven check out one by one and sleep.
        for c in 0..7 {
            s.step(&[checkout(c, 70)], &mut m);
            let ev = s.step(&[], &mut m);
            assert_eq!(ev.completed, vec![(c, true)]);
        }
        // The eighth releases everyone.
        s.step(&[checkout(7, 70)], &mut m);
        let ev = s.step(&[], &mut m);
        assert_eq!(ev.completed, vec![(7, false)]);
        assert_eq!(ev.wake, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(m.peek(70), 0);
    }

    #[test]
    fn snapshot_round_trip_mid_rmw() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        // Catch the synchronizer between the read and write cycles of a
        // merged check-in.
        s.step(&[checkin(0, 90), checkin(2, 90)], &mut m);
        assert!(s.is_busy());
        let snap = s.save();
        assert_eq!(snap.batch, vec![(0, true), (2, true)]);

        let mut restored = Synchronizer::new();
        restored.load_snapshot(&snap);
        assert!(restored.is_busy());
        assert_eq!(restored.stats(), s.stats());

        // Both finish the write cycle identically.
        let ev_orig = s.step(&[], &mut m);
        let mut m2 = dm();
        m2.lock_word(90); // the word lock is memory state, restored separately
        let ev_rest = restored.step(&[], &mut m2);
        assert_eq!(ev_orig, ev_rest);
        assert_eq!(m.peek(90), m2.peek(90));
        assert_eq!(restored.save(), s.save());
    }

    #[test]
    fn display_states() {
        let mut m = dm();
        let mut s = Synchronizer::new();
        assert_eq!(s.to_string(), "synchronizer idle");
        s.step(&[checkin(0, 80)], &mut m);
        assert!(s.to_string().contains("busy"));
    }
}

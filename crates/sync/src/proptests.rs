//! Property-based tests: the synchronizer's bookkeeping under randomized
//! arrival orders.

use crate::{sync_word, SyncEvents, Synchronizer};
use proptest::prelude::*;
use std::collections::BTreeSet;
use ulp_cpu::{SyncKind, SyncRequest};
use ulp_mem::{BankMapping, BankedMemory};

const WORD: u16 = 64;

fn req(core: usize, kind: SyncKind) -> (usize, SyncRequest) {
    (
        core,
        SyncRequest {
            index: 0,
            word_addr: WORD,
            kind,
        },
    )
}

/// Drives the synchronizer until idle, collecting all events; cores whose
/// requests were not yet accepted retry every cycle, as they do on the
/// platform.
fn drive(
    sync: &mut Synchronizer,
    dm: &mut BankedMemory,
    mut waiting: Vec<(usize, SyncRequest)>,
) -> Vec<SyncEvents> {
    let mut events = Vec::new();
    for _ in 0..200 {
        let ev = sync.step(&waiting, dm);
        waiting.retain(|(core, _)| !ev.accepted.contains(core));
        events.push(ev);
        if waiting.is_empty() && !sync.is_busy() {
            break;
        }
    }
    assert!(waiting.is_empty(), "requests starved");
    assert!(!sync.is_busy(), "synchronizer stuck busy");
    events
}

/// A random partition of the 8 cores into ordered non-empty arrival waves.
fn waves() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(0usize..4, 8).prop_map(|wave_of| {
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); 4];
        for (core, w) in wave_of.into_iter().enumerate() {
            waves[w].push(core);
        }
        waves.into_iter().filter(|w| !w.is_empty()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `sync_word::make` and the `flags`/`counter` accessors are exact
    /// inverses over the whole field domain.
    #[test]
    fn sync_word_encode_decode_round_trips(flags in any::<u8>(), counter in any::<u8>()) {
        let word = sync_word::make(flags, counter);
        prop_assert_eq!(sync_word::flags(word), flags);
        prop_assert_eq!(sync_word::counter(word), counter);
        // And the other direction: any word decomposes and recomposes.
        prop_assert_eq!(sync_word::make(sync_word::flags(word), sync_word::counter(word)), word);
    }

    /// However the eight cores arrive at a barrier — any partition into
    /// check-in waves, any partition into check-out waves — the barrier
    /// releases exactly once, wakes exactly the sleepers, and leaves the
    /// sync word zero.
    #[test]
    fn barrier_invariants_hold_for_any_arrival_order(
        in_waves in waves(),
        out_waves in waves(),
    ) {
        let mut dm = BankedMemory::new(1024, 4, BankMapping::Blocked);
        let mut sync = Synchronizer::new();

        // Check-in phase, wave by wave.
        for wave in &in_waves {
            let reqs: Vec<_> = wave.iter().map(|&c| req(c, SyncKind::CheckIn)).collect();
            let events = drive(&mut sync, &mut dm, reqs);
            // No check-in ever sleeps or wakes anyone.
            for ev in &events {
                prop_assert!(ev.wake.is_empty());
                prop_assert!(ev.completed.iter().all(|(_, sleep)| !sleep));
            }
        }
        prop_assert_eq!(sync_word::counter(dm.peek(WORD)), 8);
        prop_assert_eq!(sync_word::flags(dm.peek(WORD)), 0xFF);

        // Check-out phase.
        let mut slept: BTreeSet<usize> = BTreeSet::new();
        let mut woken: BTreeSet<usize> = BTreeSet::new();
        let mut releases = 0;
        let total_waves = out_waves.len();
        for (i, wave) in out_waves.iter().enumerate() {
            let reqs: Vec<_> = wave.iter().map(|&c| req(c, SyncKind::CheckOut)).collect();
            let events = drive(&mut sync, &mut dm, reqs);
            let last_wave = i + 1 == total_waves;
            for ev in &events {
                for (core, sleep) in &ev.completed {
                    if *sleep {
                        slept.insert(*core);
                    }
                }
                if !ev.wake.is_empty() {
                    releases += 1;
                    woken.extend(ev.wake.iter().copied());
                }
            }
            if !last_wave {
                prop_assert!(woken.is_empty(), "woke before the last wave");
            }
        }
        prop_assert_eq!(releases, 1, "exactly one barrier release");
        prop_assert_eq!(dm.peek(WORD), 0, "sync word cleared");
        // Everyone who slept was woken; nobody else was.
        prop_assert_eq!(&woken, &slept);
        // The last arrivals never slept.
        let last_wave: BTreeSet<usize> =
            out_waves.last().expect("non-empty").iter().copied().collect();
        prop_assert!(slept.is_disjoint(&last_wave) ||
                     // ...unless the last wave itself split into serialized
                     // batches whose earlier members had to sleep. Those
                     // must then appear in `woken`, which equals `slept`.
                     !slept.is_empty());
        // Bookkeeping totals.
        let stats = sync.stats();
        prop_assert_eq!(stats.checkin_requests, 8);
        prop_assert_eq!(stats.checkout_requests, 8);
        prop_assert_eq!(stats.underflows, 0);
        prop_assert_eq!(stats.releases, 1);
        prop_assert_eq!(stats.wakeups as usize, slept.len());
        // Every accepted batch costs exactly two busy cycles.
        prop_assert_eq!(stats.busy_cycles, 2 * stats.batches);
    }

    /// The DM traffic of a barrier is exactly one read plus one write per
    /// merged batch, regardless of arrival order.
    #[test]
    fn dm_traffic_is_two_accesses_per_batch(in_waves in waves()) {
        let mut dm = BankedMemory::new(1024, 4, BankMapping::Blocked);
        let mut sync = Synchronizer::new();
        for wave in &in_waves {
            let reqs: Vec<_> = wave.iter().map(|&c| req(c, SyncKind::CheckIn)).collect();
            drive(&mut sync, &mut dm, reqs);
        }
        let stats = sync.stats();
        prop_assert_eq!(dm.stats().bank_reads, stats.batches);
        prop_assert_eq!(dm.stats().bank_writes, stats.batches);
        // Merging bounds: at least one batch per wave, at most one per core.
        prop_assert!(stats.batches >= in_waves.len() as u64);
        prop_assert!(stats.batches <= 8);
    }
}

/// The counter byte tracks membership beyond the 8 identity-flag bits:
/// with 12 logical cores checked in (flags alias modulo 8), the barrier
/// still requires all 12 check-outs before releasing.
#[test]
fn counter_tracks_more_than_eight_checkins() {
    let mut dm = BankedMemory::new(1024, 4, BankMapping::Blocked);
    let mut sync = Synchronizer::new();
    let cores: Vec<usize> = (0..12).collect();

    let reqs: Vec<_> = cores.iter().map(|&c| req(c, SyncKind::CheckIn)).collect();
    drive(&mut sync, &mut dm, reqs);
    assert_eq!(sync_word::counter(dm.peek(WORD)), 12, "counter exceeds 8");
    assert_eq!(
        sync_word::flags(dm.peek(WORD)),
        0xFF,
        "flags saturate at 8 bits"
    );

    // Eleven check-outs leave the barrier armed; the counter never hits 0.
    for &c in &cores[..11] {
        drive(&mut sync, &mut dm, vec![req(c, SyncKind::CheckOut)]);
        assert!(sync_word::counter(dm.peek(WORD)) > 0, "released too early");
    }
    assert_eq!(sync.stats().releases, 0);

    // The twelfth check-out drives the counter to zero and releases.
    drive(&mut sync, &mut dm, vec![req(11, SyncKind::CheckOut)]);
    assert_eq!(sync.stats().releases, 1, "exactly one release");
    assert_eq!(dm.peek(WORD), 0, "sync word cleared");
    assert_eq!(sync.stats().underflows, 0);
}

/// The counter byte saturates at 255 instead of wrapping to zero — a wrap
/// would spuriously release the barrier.
#[test]
fn counter_saturates_instead_of_wrapping() {
    let mut dm = BankedMemory::new(1024, 4, BankMapping::Blocked);
    let mut sync = Synchronizer::new();
    dm.poke(WORD, sync_word::make(0xFF, 255));

    drive(&mut sync, &mut dm, vec![req(0, SyncKind::CheckIn)]);
    assert_eq!(
        sync_word::counter(dm.peek(WORD)),
        255,
        "clamped, not wrapped"
    );
    assert_eq!(sync.stats().releases, 0, "no spurious release");

    // A check-out still decrements from the clamp.
    drive(&mut sync, &mut dm, vec![req(0, SyncKind::CheckOut)]);
    assert_eq!(sync_word::counter(dm.peek(WORD)), 254);
}

//! Event-energy constants and their calibration against Table I.

use crate::activity::Activity;

/// Per-component dynamic power targets at 8 MOps/s and 1.2 V — the
/// mid-points of the paper's Table I ranges for the design **without** the
/// synchronization feature, plus the two targets that only exist on the
/// improved design (core ISE overhead and synchronizer power).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Targets {
    /// Cores, without-sync design (mW).
    pub cores: f64,
    /// Instruction memory (mW), mid-range.
    pub im: f64,
    /// Data memory (mW), mid-range.
    pub dm: f64,
    /// Data crossbar (mW).
    pub dxbar: f64,
    /// Instruction crossbar (mW).
    pub ixbar: f64,
    /// Clock tree (mW), mid-range.
    pub clock: f64,
    /// Cores on the improved design (mW) — fixes the ISE energy factor.
    pub cores_with_sync: f64,
    /// Synchronizer on the improved design (mW).
    pub synchronizer: f64,
}

impl Table1Targets {
    /// The paper's Table I numbers (mid-points of the reported ranges) at
    /// a workload of 8 MOps/s and 1.2 V.
    pub fn paper() -> Table1Targets {
        Table1Targets {
            cores: 0.14,
            im: 0.28,  // 0.20 .. 0.36
            dm: 0.065, // 0.05 .. 0.08
            dxbar: 0.06,
            ixbar: 0.03,
            clock: 0.125, // 0.09 .. 0.16
            cores_with_sync: 0.16,
            synchronizer: 0.01,
        }
    }
}

/// Event energies at the nominal voltage (1.2 V, 90 nm low-leakage), in
/// picojoules per event.
///
/// These are the model's only free constants. They are fitted **once**
/// against the without-synchronizer column of Table I
/// ([`EnergyModel::calibrate`]); every number reported for the improved
/// design afterwards is a prediction driven by simulated activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Core energy per active (clocked) cycle.
    pub core_active: f64,
    /// Core energy per clock-gated (waiting) cycle.
    pub core_gated: f64,
    /// Core energy per sleeping cycle (externally gated).
    pub core_sleep: f64,
    /// Multiplier on core energy for the ISE-extended core (the paper:
    /// "cores in the improved architecture consume slightly more power
    /// ... due to the ISE").
    pub ise_factor: f64,
    /// Energy per physical IM bank access.
    pub im_access: f64,
    /// Energy per physical DM bank access.
    pub dm_access: f64,
    /// Energy per I-Xbar transfer.
    pub ixbar_transfer: f64,
    /// Energy per D-Xbar transfer.
    pub dxbar_transfer: f64,
    /// Energy per synchronizer read-modify-write batch.
    pub sync_batch: f64,
    /// Clock-tree root energy per clock cycle.
    pub clock_root: f64,
    /// Clock-tree leaf energy per core-active cycle (gated off while a
    /// core waits or sleeps).
    pub clock_leaf: f64,
}

impl EnergyModel {
    /// Fraction of the active-cycle energy burned by a clock-gated core
    /// (latched state, local gating logic).
    const GATED_FRACTION: f64 = 0.12;
    /// Fraction burned while asleep (fully gated externally).
    const SLEEP_FRACTION: f64 = 0.03;
    /// Fraction of the clock-tree target attributed to the always-on root
    /// (the rest is per-core leaf clocking, gated with the core).
    const ROOT_FRACTION: f64 = 0.75;

    /// Fits the event energies to `targets` given the measured activity of
    /// the baseline (without-sync) design and of the improved design at a
    /// workload of 8 MOps/s.
    ///
    /// Each component has one unknown energy and one linear equation
    /// `P = e · (events/op) · W`, so calibration is exact by construction
    /// for the baseline column; the improved design's IM/DM/crossbar/clock
    /// rows are *predictions*. Only `ise_factor` and `sync_batch` are
    /// fitted on the improved design because they describe hardware that
    /// does not exist in the baseline.
    pub fn calibrate(
        baseline: &Activity,
        with_sync: &Activity,
        targets: &Table1Targets,
    ) -> EnergyModel {
        assert!(!baseline.has_sync && with_sync.has_sync, "designs swapped");
        const W: f64 = 8.0; // MOps/s; P[mW] = e[pJ] * events/op * W * 1e-3
        let to_energy = |p_mw: f64, events_per_op: f64| p_mw / (events_per_op * W * 1e-3);

        // Cores: P = (a·e_act + g·e_gate + s·e_sleep)·W with fixed ratios.
        let weighted = baseline.core_active
            + baseline.core_gated * Self::GATED_FRACTION
            + baseline.core_sleep * Self::SLEEP_FRACTION;
        let core_active = to_energy(targets.cores, weighted);

        // ISE factor from the improved design's core row.
        let weighted_sync = with_sync.core_active
            + with_sync.core_gated * Self::GATED_FRACTION
            + with_sync.core_sleep * Self::SLEEP_FRACTION;
        let ise_factor = targets.cores_with_sync / (core_active * weighted_sync * W * 1e-3);

        // Clock tree: root runs at f = W / R; leaves clock active cores.
        let f_mhz = W / baseline.ops_per_cycle;
        let clock_root = targets.clock * Self::ROOT_FRACTION / (f_mhz * 1e-3);
        let clock_leaf =
            targets.clock * (1.0 - Self::ROOT_FRACTION) / (baseline.core_active * W * 1e-3);

        EnergyModel {
            core_active,
            core_gated: core_active * Self::GATED_FRACTION,
            core_sleep: core_active * Self::SLEEP_FRACTION,
            ise_factor,
            im_access: to_energy(targets.im, baseline.im_accesses),
            dm_access: to_energy(targets.dm, baseline.dm_accesses),
            ixbar_transfer: to_energy(targets.ixbar, baseline.ixbar_transfers),
            dxbar_transfer: to_energy(targets.dxbar, baseline.dxbar_transfers),
            sync_batch: to_energy(targets.synchronizer, with_sync.sync_batches.max(1e-12)),
            clock_root,
            clock_leaf,
        }
    }

    /// A representative pre-calibrated model: fitted against
    /// [`Table1Targets::paper`] using typical activity vectors of the three
    /// ECG benchmarks on this simulator (baseline ≈ 2.2 ops/cycle with one
    /// IM access per op; improved ≈ 3.4 ops/cycle with ≈ 0.23 accesses
    /// per op). The experiment harness re-calibrates from real runs; this
    /// constructor serves documentation, tests and quick studies.
    pub fn calibrated_90nm() -> EnergyModel {
        let baseline = Activity {
            ops_per_cycle: 2.22,
            core_active: 2.14,
            core_gated: 1.46,
            core_sleep: 0.0,
            im_accesses: 0.45,
            dm_accesses: 0.13,
            ixbar_transfers: 1.07,
            dxbar_transfers: 0.13,
            sync_batches: 0.0,
            sync_busy: 0.0,
            has_sync: false,
        };
        let with_sync = Activity {
            ops_per_cycle: 3.38,
            core_active: 2.2,
            core_gated: 0.8,
            core_sleep: 0.6,
            im_accesses: 0.23,
            dm_accesses: 0.14,
            ixbar_transfers: 1.07,
            dxbar_transfers: 0.14,
            sync_batches: 0.02,
            sync_busy: 0.04,
            has_sync: true,
        };
        EnergyModel::calibrate(&baseline, &with_sync, &Table1Targets::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_baseline_targets() {
        let m = EnergyModel::calibrated_90nm();
        // All energies are positive and within a plausible 90 nm envelope.
        for (name, e) in [
            ("core_active", m.core_active),
            ("im", m.im_access),
            ("dm", m.dm_access),
            ("ixbar", m.ixbar_transfer),
            ("dxbar", m.dxbar_transfer),
            ("sync", m.sync_batch),
            ("clock_root", m.clock_root),
        ] {
            assert!(e > 0.0 && e < 500.0, "{name} = {e} pJ");
        }
        assert!(m.core_gated < m.core_active);
        assert!(m.core_sleep < m.core_gated);
        // The ISE costs a little extra, as the paper reports.
        assert!(m.ise_factor > 1.0 && m.ise_factor < 2.0, "{}", m.ise_factor);
    }

    #[test]
    fn calibration_is_exact_for_the_fitted_column() {
        let baseline = Activity::synthetic(2.0, 1.0, 0.15, false);
        let with = Activity::synthetic(3.5, 0.3, 0.16, true);
        let t = Table1Targets::paper();
        let m = EnergyModel::calibrate(&baseline, &with, &t);
        const W: f64 = 8.0;
        let p_im = m.im_access * baseline.im_accesses * W * 1e-3;
        assert!((p_im - t.im).abs() < 1e-9);
        let p_dm = m.dm_access * baseline.dm_accesses * W * 1e-3;
        assert!((p_dm - t.dm).abs() < 1e-9);
        let p_cores = (m.core_active * baseline.core_active
            + m.core_gated * baseline.core_gated
            + m.core_sleep * baseline.core_sleep)
            * W
            * 1e-3;
        assert!((p_cores - t.cores).abs() < 1e-9);
        let f = W / baseline.ops_per_cycle;
        let p_clk = m.clock_root * f * 1e-3 + m.clock_leaf * baseline.core_active * W * 1e-3;
        assert!((p_clk - t.clock).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "designs swapped")]
    fn calibrate_checks_design_order() {
        let a = Activity::synthetic(2.0, 1.0, 0.15, true);
        let b = Activity::synthetic(3.5, 0.3, 0.16, false);
        let _ = EnergyModel::calibrate(&a, &b, &Table1Targets::paper());
    }
}

//! The assembled power model: component breakdowns and Fig. 3 curves.

use crate::activity::Activity;
use crate::energy::EnergyModel;
use crate::voltage::VoltageModel;
use std::fmt;

/// Per-component dynamic power in milliwatts (one column of Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// The processing cores.
    pub cores: f64,
    /// Instruction memory banks.
    pub im: f64,
    /// Data memory banks.
    pub dm: f64,
    /// Data crossbar.
    pub dxbar: f64,
    /// Instruction crossbar.
    pub ixbar: f64,
    /// Hardware synchronizer (zero on the baseline design).
    pub synchronizer: f64,
    /// Clock tree.
    pub clock: f64,
}

impl PowerBreakdown {
    /// Total dynamic power in mW.
    pub fn total(&self) -> f64 {
        self.cores + self.im + self.dm + self.dxbar + self.ixbar + self.synchronizer + self.clock
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.3} mW (cores {:.3}, IM {:.3}, DM {:.3}, D-Xbar {:.3}, I-Xbar {:.3}, sync {:.3}, clock {:.3})",
            self.total(),
            self.cores,
            self.im,
            self.dm,
            self.dxbar,
            self.ixbar,
            self.synchronizer,
            self.clock
        )
    }
}

/// An operating point on the voltage-scaled power curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPoint {
    /// Workload in MOps/s.
    pub w_mops: f64,
    /// Required clock frequency in MHz.
    pub f_mhz: f64,
    /// Minimum feasible supply voltage in V.
    pub voltage: f64,
    /// Total dynamic power in mW at that voltage.
    pub total_mw: f64,
    /// Per-component breakdown at that voltage.
    pub breakdown: PowerBreakdown,
}

impl PowerPoint {
    /// Energy per useful operation at this operating point, in nanojoules
    /// (`mW / MOps/s` is exactly `nJ/op`).
    pub fn energy_per_op_nj(&self) -> f64 {
        if self.w_mops <= 0.0 {
            return 0.0;
        }
        self.total_mw / self.w_mops
    }
}

/// One sample of a Fig. 3 power-versus-workload series.
pub type Fig3Point = PowerPoint;

/// Event-energy power model with voltage scaling — the evaluation flow of
/// Section V of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Event energies at nominal voltage.
    pub energy: EnergyModel,
    /// Frequency/voltage scaling.
    pub voltage: VoltageModel,
}

impl PowerModel {
    /// Builds a model from its parts.
    pub fn new(energy: EnergyModel, voltage: VoltageModel) -> PowerModel {
        PowerModel { energy, voltage }
    }

    /// The representative pre-calibrated model (see
    /// [`EnergyModel::calibrated_90nm`]).
    pub fn calibrated_default() -> PowerModel {
        PowerModel::new(EnergyModel::calibrated_90nm(), VoltageModel::default())
    }

    /// Per-component dynamic power of a design running workload `w_mops`
    /// at supply voltage `v` (Table I evaluates 8 MOps/s at 1.2 V).
    pub fn breakdown(&self, act: &Activity, w_mops: f64, v: f64) -> PowerBreakdown {
        let e = &self.energy;
        let scale = self.voltage.power_scale(v);
        let per = |energy_pj: f64, events_per_op: f64| energy_pj * events_per_op * w_mops * 1e-3;
        let ise = if act.has_sync { e.ise_factor } else { 1.0 };
        let f_mhz = w_mops / act.ops_per_cycle;
        PowerBreakdown {
            cores: ise
                * (per(e.core_active, act.core_active)
                    + per(e.core_gated, act.core_gated)
                    + per(e.core_sleep, act.core_sleep)),
            im: per(e.im_access, act.im_accesses),
            dm: per(e.dm_access, act.dm_accesses),
            dxbar: per(e.dxbar_transfer, act.dxbar_transfers),
            ixbar: per(e.ixbar_transfer, act.ixbar_transfers),
            synchronizer: per(e.sync_batch, act.sync_batches),
            clock: e.clock_root * f_mhz * 1e-3 + per(e.clock_leaf, act.core_active),
        }
        .scaled(scale)
    }

    /// Highest workload the design sustains at nominal voltage, in MOps/s
    /// (the right end of its Fig. 3 curve).
    pub fn max_workload(&self, act: &Activity) -> f64 {
        act.ops_per_cycle * self.voltage.f_nom_mhz
    }

    /// Power at workload `w_mops` with the supply scaled down to the
    /// minimum feasible voltage, or `None` if the workload exceeds
    /// [`PowerModel::max_workload`].
    pub fn power_at_workload(&self, act: &Activity, w_mops: f64) -> Option<PowerPoint> {
        let f_mhz = w_mops / act.ops_per_cycle;
        let voltage = self.voltage.v_for_frequency(f_mhz)?;
        let breakdown = self.breakdown(act, w_mops, voltage);
        Some(PowerPoint {
            w_mops,
            f_mhz,
            voltage,
            total_mw: breakdown.total(),
            breakdown,
        })
    }

    /// The voltage-scaled power-versus-workload series of one Fig. 3
    /// curve: `points` log-spaced workloads from `w_min` MOps/s up to the
    /// design's maximum.
    pub fn fig3_series(&self, act: &Activity, w_min: f64, points: usize) -> Vec<Fig3Point> {
        assert!(points >= 2, "need at least two points");
        let w_max = self.max_workload(act);
        let ratio = (w_max / w_min).powf(1.0 / (points - 1) as f64);
        (0..points)
            .map(|i| {
                let w = (w_min * ratio.powi(i as i32)).min(w_max);
                self.power_at_workload(act, w)
                    .expect("within feasible range")
            })
            .collect()
    }

    /// The workload at the voltage-floor knee, in MOps/s: below it the
    /// supply sits at `v_min` and energy per operation is constant (the
    /// design's minimum); above it the required voltage rises and every
    /// operation gets more expensive.
    pub fn knee_workload(&self, act: &Activity) -> f64 {
        act.ops_per_cycle * self.voltage.f_max(self.voltage.v_min)
    }

    /// Minimum achievable energy per operation (nJ), reached anywhere at
    /// or below the voltage-floor knee.
    pub fn min_energy_per_op_nj(&self, act: &Activity) -> f64 {
        let w = self.knee_workload(act).min(self.max_workload(act));
        self.power_at_workload(act, w)
            .expect("knee is feasible")
            .energy_per_op_nj()
    }

    /// Energy to process `ops` useful operations at workload `w_mops`
    /// with the supply at the minimum feasible voltage, in microjoules —
    /// the *energy per recording* figure of a (possibly sharded) run over
    /// a long signal. `None` if the workload exceeds the design's range.
    pub fn energy_for_ops_uj(&self, act: &Activity, w_mops: f64, ops: u64) -> Option<f64> {
        let point = self.power_at_workload(act, w_mops)?;
        // nJ/op × ops → nJ; ×1e-3 → µJ.
        Some(point.energy_per_op_nj() * ops as f64 * 1e-3)
    }

    /// Relative power saving of `improved` over `baseline` at workload
    /// `w_mops` with voltage scaling, or `None` if either design cannot
    /// sustain the workload.
    pub fn saving_at(&self, improved: &Activity, baseline: &Activity, w_mops: f64) -> Option<f64> {
        let a = self.power_at_workload(improved, w_mops)?;
        let b = self.power_at_workload(baseline, w_mops)?;
        Some(1.0 - a.total_mw / b.total_mw)
    }
}

impl PowerBreakdown {
    fn scaled(self, k: f64) -> PowerBreakdown {
        PowerBreakdown {
            cores: self.cores * k,
            im: self.im * k,
            dm: self.dm * k,
            dxbar: self.dxbar * k,
            ixbar: self.ixbar * k,
            synchronizer: self.synchronizer * k,
            clock: self.clock * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn designs() -> (Activity, Activity) {
        // baseline, improved — shaped like the measured benchmarks.
        (
            Activity::synthetic(2.2, 0.45, 0.13, false),
            Activity::synthetic(3.4, 0.23, 0.14, true),
        )
    }

    #[test]
    fn breakdown_total_sums_components() {
        let (base, _) = designs();
        let m = PowerModel::calibrated_default();
        let b = m.breakdown(&base, 8.0, 1.2);
        let sum = b.cores + b.im + b.dm + b.dxbar + b.ixbar + b.synchronizer + b.clock;
        assert!((b.total() - sum).abs() < 1e-12);
        assert_eq!(b.synchronizer, 0.0, "no synchronizer on the baseline");
    }

    #[test]
    fn power_is_linear_in_workload_at_fixed_voltage() {
        let (base, _) = designs();
        let m = PowerModel::calibrated_default();
        let p1 = m.breakdown(&base, 4.0, 1.2).total();
        let p2 = m.breakdown(&base, 8.0, 1.2).total();
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_scaling_reduces_power_superlinearly() {
        let (_, imp) = designs();
        let m = PowerModel::calibrated_default();
        let high = m.power_at_workload(&imp, 100.0).unwrap();
        let low = m.power_at_workload(&imp, 10.0).unwrap();
        assert!(low.voltage < high.voltage);
        // Ten times less work needs far less than a tenth of the power
        // once the voltage drops (until the V_min floor).
        assert!(low.total_mw < high.total_mw / 10.0);
    }

    #[test]
    fn improved_design_saves_power_and_extends_range() {
        let (base, imp) = designs();
        let m = PowerModel::calibrated_default();
        assert!(m.max_workload(&imp) > m.max_workload(&base));

        // At the baseline's maximum workload the improved design runs at a
        // lower voltage and saves substantially (the paper's headline
        // effect: up to 64 % for MRPFLTR at 89 MOps/s).
        let w = m.max_workload(&base);
        let saving = m.saving_at(&imp, &base, w).unwrap();
        assert!(saving > 0.3, "saving {saving:.2}");
        assert!(saving < 0.8, "saving {saving:.2}");
        assert!(
            m.saving_at(&imp, &base, w * 1.01).is_none(),
            "baseline infeasible"
        );
    }

    #[test]
    fn fig3_series_is_monotonic_and_ends_at_max() {
        let (_, imp) = designs();
        let m = PowerModel::calibrated_default();
        let series = m.fig3_series(&imp, 1.0, 24);
        assert_eq!(series.len(), 24);
        for pair in series.windows(2) {
            assert!(pair[1].w_mops >= pair[0].w_mops);
            assert!(pair[1].total_mw > pair[0].total_mw, "power grows with work");
        }
        let last = series.last().unwrap();
        assert!((last.w_mops - m.max_workload(&imp)).abs() < 1e-6);
        assert!((last.voltage - 1.2).abs() < 1e-9, "ends at nominal voltage");
    }

    #[test]
    fn table1_shape_reproduced() {
        // With measured-like activities, the full Table I comparison has
        // the paper's shape: lower total, much lower IM, slightly higher
        // cores and DM on the improved design.
        let (base, imp) = designs();
        let m = PowerModel::calibrated_default();
        let b = m.breakdown(&base, 8.0, 1.2);
        let i = m.breakdown(&imp, 8.0, 1.2);
        assert!(i.total() < b.total());
        assert!(i.im < 0.6 * b.im, "IM power cut: {} vs {}", i.im, b.im);
        assert!(i.cores > b.cores, "ISE overhead visible");
        assert!(i.clock < b.clock, "lower frequency for equal work");
        assert!(i.synchronizer > 0.0 && i.synchronizer < 0.05 * i.total());
    }

    #[test]
    fn energy_per_op_is_flat_below_the_knee_and_grows_above() {
        let (_, imp) = designs();
        let m = PowerModel::calibrated_default();
        let knee = m.knee_workload(&imp);
        let e_low = m
            .power_at_workload(&imp, knee * 0.2)
            .unwrap()
            .energy_per_op_nj();
        let e_knee = m
            .power_at_workload(&imp, knee * 0.99)
            .unwrap()
            .energy_per_op_nj();
        let e_high = m
            .power_at_workload(&imp, (knee * 10.0).min(m.max_workload(&imp)))
            .unwrap()
            .energy_per_op_nj();
        assert!((e_low - e_knee).abs() / e_knee < 1e-6, "flat below knee");
        assert!(e_high > 1.5 * e_knee, "voltage makes ops pricier above");
        assert!((m.min_energy_per_op_nj(&imp) - e_knee).abs() / e_knee < 1e-6);
    }

    #[test]
    fn energy_for_ops_scales_linearly_and_respects_feasibility() {
        let (base, imp) = designs();
        let m = PowerModel::calibrated_default();
        let e1 = m.energy_for_ops_uj(&imp, 8.0, 1_000_000).unwrap();
        let e2 = m.energy_for_ops_uj(&imp, 8.0, 2_000_000).unwrap();
        assert!(e1 > 0.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9, "linear in ops");
        // Matches the nJ/op figure of the operating point.
        let per_op = m.power_at_workload(&imp, 8.0).unwrap().energy_per_op_nj();
        assert!((e1 - per_op * 1_000_000.0 * 1e-3).abs() < 1e-9);
        // Infeasible workloads price no recording.
        let too_fast = m.max_workload(&base) * 1.01;
        assert!(m.energy_for_ops_uj(&base, too_fast, 1).is_none());
    }

    #[test]
    fn improved_design_has_lower_minimum_energy() {
        let (base, imp) = designs();
        let m = PowerModel::calibrated_default();
        assert!(m.min_energy_per_op_nj(&imp) < m.min_energy_per_op_nj(&base));
    }

    #[test]
    fn display_formats_breakdown() {
        let (base, _) = designs();
        let m = PowerModel::calibrated_default();
        let text = m.breakdown(&base, 8.0, 1.2).to_string();
        assert!(text.starts_with("total "));
        assert!(text.contains("IM"));
    }
}

//! # ulp-power — event-energy power model with voltage scaling
//!
//! Reproduces the power-evaluation flow of Section V of Dogan et al.
//! (DATE 2013). The authors obtain per-component dynamic power from gate-
//! level simulation of a routed 90 nm netlist; this crate plays the same
//! role for the cycle-level simulator: per-component **event energies**
//! (pJ per bank access, per crossbar transfer, per core cycle, …) are
//! multiplied by the **activity** measured by `ulp-platform` and by the
//! operating point (voltage, frequency, workload).
//!
//! * [`Activity`] — the per-operation event vector extracted from a
//!   simulation run;
//! * [`EnergyModel`] — the event-energy constants, calibrated once against
//!   the *without-synchronizer* column of the paper's Table I
//!   ([`EnergyModel::calibrate`]); the improved design's power is then a
//!   prediction, not a fit;
//! * [`VoltageModel`] — alpha-power-law frequency/voltage scaling down to
//!   the threshold-voltage floor, with the paper's `P ∝ V²` rule;
//! * [`PowerModel`] — ties them together: Table I breakdowns
//!   ([`PowerModel::breakdown`]) and the voltage-scaled power-versus-
//!   workload curves of Fig. 3 ([`PowerModel::fig3_series`]).
//!
//! ## Example
//!
//! ```
//! use ulp_power::{Activity, PowerModel};
//!
//! let model = PowerModel::calibrated_default();
//! // A hypothetical design achieving 2 ops/cycle with one IM access/op.
//! let act = Activity::synthetic(2.0, 1.0, 0.15, false);
//! let point = model.power_at_workload(&act, 8.0).expect("feasible");
//! assert!(point.total_mw > 0.0);
//! assert!(point.voltage <= 1.2);
//! ```

mod activity;
mod energy;
mod model;
mod voltage;

pub use activity::Activity;
pub use energy::{EnergyModel, Table1Targets};
pub use model::{Fig3Point, PowerBreakdown, PowerModel, PowerPoint};
pub use voltage::VoltageModel;

//! Per-operation activity vectors extracted from simulation statistics.

use ulp_platform::SimStats;

/// Event counts per *useful operation*, plus the achieved throughput —
/// everything the power model needs to know about a (design, benchmark)
/// pair. Obtained from a simulation run via [`Activity::from_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activity {
    /// Useful operations per clock cycle (the paper's Ops/cycle).
    pub ops_per_cycle: f64,
    /// Core active (clocked) cycles per op, summed over all cores.
    pub core_active: f64,
    /// Core clock-gated cycles per op (fetch/memory/sync stalls + holds).
    pub core_gated: f64,
    /// Core sleeping cycles per op.
    pub core_sleep: f64,
    /// Physical IM bank accesses per op.
    pub im_accesses: f64,
    /// Physical DM bank accesses per op (includes synchronizer RMWs).
    pub dm_accesses: f64,
    /// I-Xbar transfers (granted fetches) per op.
    pub ixbar_transfers: f64,
    /// D-Xbar transfers (granted data accesses) per op.
    pub dxbar_transfers: f64,
    /// Synchronizer read-modify-write batches per op.
    pub sync_batches: f64,
    /// Synchronizer busy cycles per op.
    pub sync_busy: f64,
    /// Whether the design includes the synchronization feature (selects
    /// the ISE-extended core energy and the synchronizer component).
    pub has_sync: bool,
}

impl Activity {
    /// Extracts the activity vector of a finished run.
    ///
    /// # Panics
    ///
    /// Panics if the run retired no useful operations.
    pub fn from_stats(stats: &SimStats) -> Activity {
        let ops = stats.core_total.useful_ops as f64;
        assert!(ops > 0.0, "run retired no useful operations");
        let per = |x: u64| x as f64 / ops;
        let gated = stats.core_total.fetch_stall_cycles
            + stats.core_total.mem_stall_cycles
            + stats.core_total.sync_stall_cycles
            + stats.core_total.hold_cycles;
        Activity {
            ops_per_cycle: stats.ops_per_cycle(),
            core_active: per(stats.core_total.active_cycles),
            core_gated: per(gated),
            core_sleep: per(stats.core_total.sleep_cycles),
            im_accesses: per(stats.im.total_accesses()),
            dm_accesses: per(stats.dm.total_accesses()),
            ixbar_transfers: per(stats.ixbar.transfers),
            dxbar_transfers: per(stats.dxbar.transfers),
            sync_batches: per(stats.sync.map(|s| s.batches).unwrap_or(0)),
            sync_busy: per(stats.sync.map(|s| s.busy_cycles).unwrap_or(0)),
            has_sync: stats.sync.is_some(),
        }
    }

    /// A synthetic activity vector for documentation and tests: a design
    /// achieving `ops_per_cycle` with `im_per_op` IM accesses and
    /// `dm_per_op` DM accesses per op, on an 8-core platform.
    pub fn synthetic(
        ops_per_cycle: f64,
        im_per_op: f64,
        dm_per_op: f64,
        has_sync: bool,
    ) -> Activity {
        let cycles_per_op = 8.0 / ops_per_cycle; // 8 cores' worth of cycles
        Activity {
            ops_per_cycle,
            core_active: 2.0,
            core_gated: (cycles_per_op - 2.0).max(0.0),
            core_sleep: 0.0,
            im_accesses: im_per_op,
            dm_accesses: dm_per_op,
            ixbar_transfers: 1.0,
            dxbar_transfers: dm_per_op,
            sync_batches: if has_sync { 0.03 } else { 0.0 },
            sync_busy: if has_sync { 0.06 } else { 0.0 },
            has_sync,
        }
    }

    /// Folds the per-shard activity of one *sharded* run into the activity
    /// of the whole recording: each entry is a shard's activity vector
    /// with the useful operations that shard retired.
    ///
    /// Per-op event rates are op-weighted (total events over total ops)
    /// and the folded `ops_per_cycle` is total ops over total cycles — so
    /// the result equals `Activity::from_stats` of the summed shard
    /// statistics, and the power model prices the sharded recording as one
    /// logical run.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, mixes designs, or retired no ops.
    pub fn fold_weighted(shards: &[(Activity, u64)]) -> Activity {
        assert!(!shards.is_empty(), "no shard activity vectors");
        let has_sync = shards[0].0.has_sync;
        assert!(
            shards.iter().all(|(a, _)| a.has_sync == has_sync),
            "cannot fold across designs"
        );
        let total_ops: u64 = shards.iter().map(|(_, ops)| ops).sum();
        assert!(total_ops > 0, "sharded run retired no useful operations");
        let fold = |f: fn(&Activity) -> f64| {
            shards
                .iter()
                .map(|(a, ops)| f(a) * *ops as f64)
                .sum::<f64>()
                / total_ops as f64
        };
        let total_cycles: f64 = shards
            .iter()
            .map(|(a, ops)| *ops as f64 / a.ops_per_cycle)
            .sum();
        Activity {
            ops_per_cycle: total_ops as f64 / total_cycles,
            core_active: fold(|a| a.core_active),
            core_gated: fold(|a| a.core_gated),
            core_sleep: fold(|a| a.core_sleep),
            im_accesses: fold(|a| a.im_accesses),
            dm_accesses: fold(|a| a.dm_accesses),
            ixbar_transfers: fold(|a| a.ixbar_transfers),
            dxbar_transfers: fold(|a| a.dxbar_transfers),
            sync_batches: fold(|a| a.sync_batches),
            sync_busy: fold(|a| a.sync_busy),
            has_sync,
        }
    }

    /// Element-wise average of several activity vectors (used to calibrate
    /// against the mid-points of Table I ranges over the three
    /// benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or mixes designs with and without the
    /// synchronization feature.
    pub fn mean(items: &[Activity]) -> Activity {
        assert!(!items.is_empty(), "no activity vectors");
        let has_sync = items[0].has_sync;
        assert!(
            items.iter().all(|a| a.has_sync == has_sync),
            "cannot average across designs"
        );
        let n = items.len() as f64;
        let avg = |f: fn(&Activity) -> f64| items.iter().map(f).sum::<f64>() / n;
        Activity {
            ops_per_cycle: avg(|a| a.ops_per_cycle),
            core_active: avg(|a| a.core_active),
            core_gated: avg(|a| a.core_gated),
            core_sleep: avg(|a| a.core_sleep),
            im_accesses: avg(|a| a.im_accesses),
            dm_accesses: avg(|a| a.dm_accesses),
            ixbar_transfers: avg(|a| a.ixbar_transfers),
            dxbar_transfers: avg(|a| a.dxbar_transfers),
            sync_batches: avg(|a| a.sync_batches),
            sync_busy: avg(|a| a.sync_busy),
            has_sync,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_consistent() {
        let a = Activity::synthetic(2.0, 1.0, 0.2, false);
        assert!((a.core_active + a.core_gated - 4.0).abs() < 1e-9);
        assert!(!a.has_sync);
        assert_eq!(a.sync_batches, 0.0);
    }

    #[test]
    fn mean_averages_fields() {
        let a = Activity::synthetic(2.0, 1.0, 0.2, true);
        let b = Activity::synthetic(4.0, 0.5, 0.4, true);
        let m = Activity::mean(&[a, b]);
        assert!((m.ops_per_cycle - 3.0).abs() < 1e-9);
        assert!((m.im_accesses - 0.75).abs() < 1e-9);
        assert!((m.dm_accesses - 0.3).abs() < 1e-9);
    }

    #[test]
    fn fold_weighted_is_op_weighted_and_cycle_exact() {
        let a = Activity::synthetic(2.0, 1.0, 0.2, true);
        let b = Activity::synthetic(4.0, 0.5, 0.4, true);
        // Shard A retires 300 ops, shard B 100: per-op rates weight 3:1.
        let folded = Activity::fold_weighted(&[(a, 300), (b, 100)]);
        assert!((folded.im_accesses - (300.0 * 1.0 + 100.0 * 0.5) / 400.0).abs() < 1e-9);
        assert!((folded.dm_accesses - (300.0 * 0.2 + 100.0 * 0.4) / 400.0).abs() < 1e-9);
        // ops/cycle folds over total cycles: 300/2 + 100/4 = 175 cycles.
        assert!((folded.ops_per_cycle - 400.0 / 175.0).abs() < 1e-9);
        assert!(folded.has_sync);
        // A single-shard fold is the identity.
        let same = Activity::fold_weighted(&[(a, 42)]);
        assert!((same.ops_per_cycle - a.ops_per_cycle).abs() < 1e-9);
        assert!((same.im_accesses - a.im_accesses).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot fold across designs")]
    fn fold_rejects_mixed_designs() {
        let a = Activity::synthetic(2.0, 1.0, 0.2, true);
        let b = Activity::synthetic(2.0, 1.0, 0.2, false);
        let _ = Activity::fold_weighted(&[(a, 1), (b, 1)]);
    }

    #[test]
    #[should_panic(expected = "cannot average across designs")]
    fn mean_rejects_mixed_designs() {
        let a = Activity::synthetic(2.0, 1.0, 0.2, true);
        let b = Activity::synthetic(2.0, 1.0, 0.2, false);
        let _ = Activity::mean(&[a, b]);
    }

    #[test]
    fn from_stats_maps_counters() {
        use ulp_cpu::CoreStats;
        use ulp_mem::{DXbarStats, IXbarStats, MemStats};
        let core_total = CoreStats {
            useful_ops: 100,
            active_cycles: 210,
            fetch_stall_cycles: 40,
            hold_cycles: 10,
            sleep_cycles: 20,
            ..Default::default()
        };
        let im = MemStats {
            bank_reads: 50,
            ..Default::default()
        };
        let stats = SimStats {
            cycles: 50,
            num_cores: 8,
            cores: vec![],
            core_total,
            im,
            dm: MemStats::default(),
            ixbar: IXbarStats {
                transfers: 105,
                ..Default::default()
            },
            dxbar: DXbarStats::default(),
            sync: None,
            lockstep_width_sum: 0,
            lockstep_width_cycles: 0,
            jit: Default::default(),
        };
        let a = Activity::from_stats(&stats);
        assert!((a.ops_per_cycle - 2.0).abs() < 1e-9);
        assert!((a.core_active - 2.1).abs() < 1e-9);
        assert!((a.core_gated - 0.5).abs() < 1e-9);
        assert!((a.core_sleep - 0.2).abs() < 1e-9);
        assert!((a.im_accesses - 0.5).abs() < 1e-9);
        assert!((a.ixbar_transfers - 1.05).abs() < 1e-9);
        assert!(!a.has_sync);
    }
}

//! Voltage/frequency scaling: alpha-power-law delay model with the paper's
//! square-law power rule.
//!
//! The paper computes power at scaled voltages "considering that the power
//! decreases with the square of the supply voltage", and limits scaling
//! "to the transistor threshold voltage level" (Section V-A). The missing
//! piece — how much frequency a given voltage supports — is filled with
//! the standard alpha-power law:
//!
//! ```text
//! f_max(V) = f_nom · ((V − V_t) / (V_nom − V_t))^α
//! ```

use ulp_isa::arch;

/// Frequency/voltage model of the 90 nm low-leakage process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageModel {
    /// Nominal supply voltage (V).
    pub v_nom: f64,
    /// Transistor threshold voltage (V).
    pub v_t: f64,
    /// Velocity-saturation exponent of the alpha-power law.
    pub alpha: f64,
    /// Lowest permitted supply (the paper stops at the threshold level;
    /// slightly above `v_t` to keep `f_max` finite).
    pub v_min: f64,
    /// Clock frequency at `v_nom` in MHz (12 ns relaxed period).
    pub f_nom_mhz: f64,
}

impl Default for VoltageModel {
    fn default() -> Self {
        VoltageModel {
            v_nom: arch::V_NOM,
            v_t: 0.45,
            alpha: 1.5,
            v_min: 0.5,
            f_nom_mhz: arch::F_NOM_MHZ,
        }
    }
}

impl VoltageModel {
    /// Maximum clock frequency at supply `v`, in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not above the threshold voltage.
    pub fn f_max(&self, v: f64) -> f64 {
        assert!(
            v > self.v_t,
            "supply {v} V not above threshold {} V",
            self.v_t
        );
        self.f_nom_mhz * ((v - self.v_t) / (self.v_nom - self.v_t)).powf(self.alpha)
    }

    /// The lowest supply voltage at which frequency `f_mhz` is met, or
    /// `None` if it exceeds `f_max(v_nom)`.
    ///
    /// The result is floored at `v_min` — below that the paper does not
    /// scale further (sub-threshold variability, Section I).
    pub fn v_for_frequency(&self, f_mhz: f64) -> Option<f64> {
        if f_mhz > self.f_nom_mhz * (1.0 + 1e-9) {
            return None;
        }
        if f_mhz <= 0.0 {
            return Some(self.v_min);
        }
        let v =
            self.v_t + (self.v_nom - self.v_t) * (f_mhz / self.f_nom_mhz).powf(1.0 / self.alpha);
        Some(v.clamp(self.v_min, self.v_nom))
    }

    /// The paper's square-law dynamic-power scaling factor `(V/V_nom)²`.
    pub fn power_scale(&self, v: f64) -> f64 {
        (v / self.v_nom).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point() {
        let m = VoltageModel::default();
        assert!((m.f_max(m.v_nom) - m.f_nom_mhz).abs() < 1e-9);
        assert!((m.power_scale(m.v_nom) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f_max_is_monotonic() {
        let m = VoltageModel::default();
        let mut last = 0.0;
        for i in 0..20 {
            let v = 0.5 + i as f64 * 0.035;
            let f = m.f_max(v);
            assert!(f > last, "f_max must grow with V");
            last = f;
        }
    }

    #[test]
    fn v_for_frequency_inverts_f_max() {
        let m = VoltageModel::default();
        for f in [1.0, 5.0, 20.0, 50.0, 83.0] {
            let v = m.v_for_frequency(f).unwrap();
            if v > m.v_min {
                assert!(
                    (m.f_max(v) - f).abs() / f < 1e-9,
                    "inverse at {f} MHz: v={v}, f_max={}",
                    m.f_max(v)
                );
            } else {
                assert!(m.f_max(m.v_min) >= f);
            }
        }
    }

    #[test]
    fn infeasible_frequency_rejected() {
        let m = VoltageModel::default();
        assert!(m.v_for_frequency(100.0).is_none());
        assert!(m.v_for_frequency(83.333).is_some());
    }

    #[test]
    fn low_frequencies_hit_the_floor() {
        let m = VoltageModel::default();
        assert_eq!(m.v_for_frequency(0.01).unwrap(), m.v_min);
        assert_eq!(m.v_for_frequency(0.0).unwrap(), m.v_min);
    }

    #[test]
    fn square_law() {
        let m = VoltageModel::default();
        assert!((m.power_scale(0.6) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not above threshold")]
    fn below_threshold_panics() {
        let _ = VoltageModel::default().f_max(0.4);
    }
}

//! Stitching partial shard results back into one logical run.
//!
//! The merge has four jobs, each provably lossless:
//!
//! 1. **Outputs** — per channel, concatenate every shard's *core* region
//!    (dropping the halo samples deterministically: each recording sample
//!    belongs to exactly one shard's core region, so no duplicate can
//!    survive). With a halo of at least [`crate::required_halo`], the
//!    stitched signal is bit-identical to a single full-recording pass.
//! 2. **Statistics** — sum every [`SimStats`] counter across shards, so
//!    aggregate cycle/access counts equal the sum of the shard runs and
//!    per-op rates ([`ulp_power::Activity`]) price the recording as one
//!    run.
//! 3. **Events** — for MRPDLN, lift per-sample marks into globally-indexed
//!    [`DelineationEvent`]s, sorted and duplicate-free by construction.
//! 4. **Artifacts** — re-index every shard's observer output onto the
//!    merged recording's global cycle/sample axes
//!    ([`crate::MergedArtifacts`]): heat-map rows shifted by the per-shard
//!    cycle offsets, PC traces concatenated in plan order, VCDs kept as
//!    labeled per-shard dumps — so instrumentation survives sharding
//!    end to end instead of being dropped at the merge.

use crate::artifacts::{merge_artifacts, MergedArtifacts};
use crate::plan::ShardPlan;
use crate::runner::ShardedRun;
use std::fmt;
use ulp_biosignal::Mark;
use ulp_kernels::{golden_outputs, Benchmark, BenchmarkRun, RunnerError, WorkloadConfig};
use ulp_platform::SimStats;
use ulp_power::{Activity, PowerModel};

/// Why a completed [`ShardedRun`] could not be merged: every variant is a
/// structural defect of the input (misordered or malformed shards), not a
/// simulation failure — those surface as [`crate::ShardError::Job`] before
/// the merge is ever reached.
#[derive(Debug)]
pub enum MergeError {
    /// The run has no shards at all.
    NoShards,
    /// Shard `shard`'s core region does not start where the previous
    /// shard's ended — the `shards` vec is misordered, has gaps, or a
    /// shard's outputs have the wrong length. Checked unconditionally
    /// (not a `debug_assert!`): a misordered vec would otherwise stitch
    /// silently-corrupted outputs in release builds.
    MisorderedShard {
        /// Plan index of the offending shard.
        shard: usize,
        /// Where its core region had to start (samples stitched so far).
        expected_start: usize,
        /// Where it actually starts.
        found_start: usize,
    },
    /// Shard `shard` ran on a different core count than shard 0.
    CoreCountMismatch {
        /// Plan index of the offending shard.
        shard: usize,
        /// Core count of shard 0.
        expected: usize,
        /// Core count found.
        found: usize,
    },
    /// Shard `shard` produced fewer output samples than its load window —
    /// slicing its core region would read out of bounds.
    ShardOutputTooShort {
        /// Plan index of the offending shard.
        shard: usize,
        /// Channel with the short buffer.
        channel: usize,
        /// Samples the shard's load window requires.
        needed: usize,
        /// Samples actually present.
        found: usize,
    },
    /// Shard `shard`'s artifacts do not mirror the run's observer
    /// selection.
    ArtifactKindMismatch {
        /// Plan index of the offending shard.
        shard: usize,
        /// Artifact kind the selection produces.
        expected: &'static str,
        /// Artifact kind the shard carried.
        found: &'static str,
    },
    /// Shards disagree on the heat map's bank count.
    HeatMapShapeMismatch {
        /// Plan index of the offending shard.
        shard: usize,
        /// Banks per row of the first non-empty shard map.
        expected_banks: usize,
        /// Banks per row found.
        found_banks: usize,
    },
    /// The merged outputs diverged from the full-recording golden pass
    /// ([`merge_verified`] only).
    Diverged(RunnerError),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "cannot merge a run with no shards"),
            MergeError::MisorderedShard {
                shard,
                expected_start,
                found_start,
            } => write!(
                f,
                "shard {shard} starts at sample {found_start} but the stitched \
                 recording is at sample {expected_start}: shards are misordered \
                 or have gaps"
            ),
            MergeError::CoreCountMismatch {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard} ran on {found} cores but shard 0 ran on {expected}"
            ),
            MergeError::ShardOutputTooShort {
                shard,
                channel,
                needed,
                found,
            } => write!(
                f,
                "shard {shard} channel {channel} holds {found} output samples \
                 but its load window spans {needed}"
            ),
            MergeError::ArtifactKindMismatch {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard} carries {found} artifacts but the run's observer \
                 selection produces {expected}"
            ),
            MergeError::HeatMapShapeMismatch {
                shard,
                expected_banks,
                found_banks,
            } => write!(
                f,
                "shard {shard}'s heat map has {found_banks} banks per row, \
                 other shards have {expected_banks}"
            ),
            MergeError::Diverged(e) => write!(f, "merged outputs diverged: {e}"),
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::Diverged(e) => Some(e),
            _ => None,
        }
    }
}

/// One delineation event of the merged recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DelineationEvent {
    /// Channel (= core) the event was detected on.
    pub channel: usize,
    /// Sample index within the *full* recording.
    pub index: usize,
    /// `true` for a peak, `false` for a pit.
    pub is_peak: bool,
}

/// A sharded run merged back into one logical recording-length run.
#[derive(Debug)]
pub struct MergedRun {
    /// The run over the whole recording: summed statistics, stitched
    /// per-channel outputs, and the *full-recording* golden expectations —
    /// so [`BenchmarkRun::verify`] checks sharded-versus-golden
    /// equivalence end to end.
    pub run: BenchmarkRun,
    /// Cycles each shard simulated, in plan order (their sum is
    /// `run.stats.cycles`).
    pub shard_cycles: Vec<u64>,
    /// Observer output of the whole recording: every shard's artifacts
    /// merged onto the global cycle/sample axes (heat-map rows re-indexed,
    /// PC traces concatenated with offsets, VCDs labeled per shard).
    pub artifacts: MergedArtifacts,
    /// The plan the shards were cut from.
    pub plan: ShardPlan,
    /// Op-weighted fold of the per-shard activity vectors (see
    /// [`MergedRun::activity`]).
    activity: Activity,
}

impl MergedRun {
    /// Delineation events of the merged recording (empty for benchmarks
    /// other than MRPDLN). Sorted by (channel, index) and duplicate-free:
    /// every sample's mark comes from exactly one shard.
    pub fn events(&self) -> Vec<DelineationEvent> {
        if self.run.benchmark != Benchmark::Mrpdln {
            return Vec::new();
        }
        events_from_marks(&self.run.outputs)
    }

    /// The activity vector of the whole recording: the per-shard activity
    /// vectors folded op-weighted into one
    /// ([`ulp_power::Activity::fold_weighted`]) at merge time. Equal (up
    /// to floating-point rounding) to `Activity::from_stats` of the
    /// summed statistics, since both weight every per-op rate by the ops
    /// that produced it.
    pub fn activity(&self) -> Activity {
        self.activity
    }

    /// Energy to process the recording at workload `w_mops` under
    /// `model`, in microjoules — the folded activity priced by the power
    /// model. `None` if the workload exceeds the design's feasible range.
    pub fn energy_uj(&self, model: &PowerModel, w_mops: f64) -> Option<f64> {
        model.energy_for_ops_uj(&self.activity, w_mops, self.run.stats.useful_ops())
    }
}

/// Extracts globally-indexed events from full-recording mark buffers.
fn events_from_marks(outputs: &[Vec<u16>]) -> Vec<DelineationEvent> {
    let mut events = Vec::new();
    for (channel, marks) in outputs.iter().enumerate() {
        for (index, &word) in marks.iter().enumerate() {
            if word == u16::from(Mark::Peak) || word == u16::from(Mark::Pit) {
                events.push(DelineationEvent {
                    channel,
                    index,
                    is_peak: word == u16::from(Mark::Peak),
                });
            }
        }
    }
    events
}

/// Field-wise sum of shard statistics: every counter adds up, so the
/// merged [`SimStats`] reports exactly the work the shards performed
/// together. `num_cores` is taken from the first shard (all shards run the
/// same platform shape); per-core counters merge index-wise.
///
/// # Panics
///
/// Panics with a message naming the offending shard if `parts` is empty,
/// mixes designs (some shards with synchronizer statistics, some without)
/// or mixes platform shapes (differing core counts) — summing any of
/// those would silently drop or misattribute counters.
pub fn sum_stats(parts: &[&SimStats]) -> SimStats {
    let first = parts
        .first()
        .expect("sum_stats: no shard statistics to sum");
    let mut total = SimStats {
        cycles: 0,
        num_cores: first.num_cores,
        cores: vec![Default::default(); first.cores.len()],
        core_total: Default::default(),
        im: Default::default(),
        dm: Default::default(),
        ixbar: Default::default(),
        dxbar: Default::default(),
        sync: first.sync.map(|_| Default::default()),
        lockstep_width_sum: 0,
        lockstep_width_cycles: 0,
        jit: Default::default(),
    };
    for (index, part) in parts.iter().enumerate() {
        assert_eq!(
            part.sync.is_some(),
            total.sync.is_some(),
            "sum_stats: shard {index} and shard 0 ran on different designs \
             (synchronizer statistics present on one but not the other)"
        );
        assert_eq!(
            part.cores.len(),
            total.cores.len(),
            "sum_stats: shard {index} has per-core counters for {} cores, \
             shard 0 for {} — an index-wise merge would drop counters",
            part.cores.len(),
            total.cores.len()
        );
        total.cycles += part.cycles;
        total.core_total.merge(&part.core_total);
        for (t, p) in total.cores.iter_mut().zip(&part.cores) {
            t.merge(p);
        }
        total.im.merge(&part.im);
        total.dm.merge(&part.dm);
        total.ixbar.merge(&part.ixbar);
        total.dxbar.merge(&part.dxbar);
        if let (Some(t), Some(p)) = (&mut total.sync, &part.sync) {
            t.merge(p);
        }
        total.lockstep_width_sum += part.lockstep_width_sum;
        total.lockstep_width_cycles += part.lockstep_width_cycles;
        total.jit.merge(&part.jit);
    }
    total
}

/// Merges a completed [`ShardedRun`] into one logical run over the whole
/// recording.
///
/// The returned [`MergedRun`]'s `run.expected` is the **full-recording
/// golden pass** (computed in Rust over the entire signal, unconstrained
/// by platform buffer sizes), so `run.verify()` asserts the sharding
/// subsystem's equivalence claim: with an adequate halo, splitting the
/// time axis and stitching the partial outputs loses nothing.
///
/// # Errors
///
/// [`MergeError`] on structurally invalid input (no shards, misordered or
/// misshapen shard outputs). [`RunnerError::OutputMismatch`] is *not*
/// raised here — like the kernel runner, mismatches are left to
/// [`BenchmarkRun::verify`] so callers can inspect the stitched data.
pub fn merge(sharded: &ShardedRun) -> Result<MergedRun, MergeError> {
    let expected = golden_outputs(
        sharded.config.benchmark,
        &sharded.config.workload,
        sharded.config.cores,
    );
    merge_with_golden(sharded, expected)
}

/// [`merge`] with a caller-supplied full-recording golden pass, for
/// callers that merge many sharded runs over the same recording (the
/// sweep's shard axis) and want to compute the golden once per
/// (benchmark, cores) instead of once per cell. `expected` must be what
/// [`golden_outputs`] returns for the run's benchmark, workload and core
/// count — anything else makes `verify()` meaningless.
///
/// # Errors
///
/// See [`merge`].
pub fn merge_with_golden(
    sharded: &ShardedRun,
    expected: Vec<Vec<u16>>,
) -> Result<MergedRun, MergeError> {
    if sharded.shards.is_empty() {
        return Err(MergeError::NoShards);
    }
    let cores = sharded.config.cores;
    let total = sharded.plan.total();
    for (index, out) in sharded.shards.iter().enumerate() {
        if out.run.stats.num_cores != sharded.shards[0].run.stats.num_cores {
            return Err(MergeError::CoreCountMismatch {
                shard: index,
                expected: sharded.shards[0].run.stats.num_cores,
                found: out.run.stats.num_cores,
            });
        }
        for (channel, buf) in out.run.outputs.iter().enumerate() {
            if buf.len() < out.shard.load_len() {
                return Err(MergeError::ShardOutputTooShort {
                    shard: index,
                    channel,
                    needed: out.shard.load_len(),
                    found: buf.len(),
                });
            }
        }
    }
    let mut outputs: Vec<Vec<u16>> = (0..cores).map(|_| Vec::with_capacity(total)).collect();
    for (index, out) in sharded.shards.iter().enumerate() {
        let local = out.shard.local_core();
        for (channel, stitched) in outputs.iter_mut().enumerate() {
            // Always-on (a misordered `shards` vec would otherwise stitch
            // silently-corrupted outputs in release builds).
            if stitched.len() != out.shard.start {
                return Err(MergeError::MisorderedShard {
                    shard: index,
                    expected_start: stitched.len(),
                    found_start: out.shard.start,
                });
            }
            stitched.extend_from_slice(&out.run.outputs[channel][local.clone()]);
        }
    }
    let stats = sum_stats(
        &sharded
            .shards
            .iter()
            .map(|s| &s.run.stats)
            .collect::<Vec<_>>(),
    );
    // Fold each shard's activity vector, weighted by the ops it retired —
    // the recording-level input to the power model.
    let activity = Activity::fold_weighted(
        &sharded
            .shards
            .iter()
            .map(|s| (Activity::from_stats(&s.run.stats), s.run.stats.useful_ops()))
            .collect::<Vec<_>>(),
    );
    let artifacts = merge_artifacts(&sharded.config.observers, &sharded.shards)?;
    Ok(MergedRun {
        run: BenchmarkRun {
            benchmark: sharded.config.benchmark,
            with_sync: sharded.config.with_sync,
            stats,
            outputs,
            expected,
        },
        shard_cycles: sharded.shards.iter().map(|s| s.run.stats.cycles).collect(),
        artifacts,
        plan: sharded.plan.clone(),
        activity,
    })
}

/// [`merge`] plus verification: returns the merged run only if the
/// stitched outputs are bit-identical to the full-recording golden pass.
///
/// # Errors
///
/// A structural [`MergeError`], or [`MergeError::Diverged`] wrapping the
/// [`RunnerError::OutputMismatch`] naming the first differing channel.
pub fn merge_verified(sharded: &ShardedRun) -> Result<MergedRun, MergeError> {
    let merged = merge(sharded)?;
    merged.run.verify().map_err(MergeError::Diverged)?;
    Ok(merged)
}

/// Convenience used by sweeps and tests: the single-pass golden events of
/// a full recording, for comparison with [`MergedRun::events`].
pub fn golden_events(cfg: &WorkloadConfig, cores: usize) -> Vec<DelineationEvent> {
    events_from_marks(&golden_outputs(Benchmark::Mrpdln, cfg, cores))
}

//! Stitching partial shard results back into one logical run.
//!
//! The merge has three jobs, each provably lossless:
//!
//! 1. **Outputs** — per channel, concatenate every shard's *core* region
//!    (dropping the halo samples deterministically: each recording sample
//!    belongs to exactly one shard's core region, so no duplicate can
//!    survive). With a halo of at least [`crate::required_halo`], the
//!    stitched signal is bit-identical to a single full-recording pass.
//! 2. **Statistics** — sum every [`SimStats`] counter across shards, so
//!    aggregate cycle/access counts equal the sum of the shard runs and
//!    per-op rates ([`ulp_power::Activity`]) price the recording as one
//!    run.
//! 3. **Events** — for MRPDLN, lift per-sample marks into globally-indexed
//!    [`DelineationEvent`]s, sorted and duplicate-free by construction.

use crate::plan::ShardPlan;
use crate::runner::ShardedRun;
use ulp_biosignal::Mark;
use ulp_kernels::{golden_outputs, Benchmark, BenchmarkRun, RunnerError, WorkloadConfig};
use ulp_platform::SimStats;
use ulp_power::{Activity, PowerModel};

/// One delineation event of the merged recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DelineationEvent {
    /// Channel (= core) the event was detected on.
    pub channel: usize,
    /// Sample index within the *full* recording.
    pub index: usize,
    /// `true` for a peak, `false` for a pit.
    pub is_peak: bool,
}

/// A sharded run merged back into one logical recording-length run.
#[derive(Debug)]
pub struct MergedRun {
    /// The run over the whole recording: summed statistics, stitched
    /// per-channel outputs, and the *full-recording* golden expectations —
    /// so [`BenchmarkRun::verify`] checks sharded-versus-golden
    /// equivalence end to end.
    pub run: BenchmarkRun,
    /// Cycles each shard simulated, in plan order (their sum is
    /// `run.stats.cycles`).
    pub shard_cycles: Vec<u64>,
    /// The plan the shards were cut from.
    pub plan: ShardPlan,
    /// Op-weighted fold of the per-shard activity vectors (see
    /// [`MergedRun::activity`]).
    activity: Activity,
}

impl MergedRun {
    /// Delineation events of the merged recording (empty for benchmarks
    /// other than MRPDLN). Sorted by (channel, index) and duplicate-free:
    /// every sample's mark comes from exactly one shard.
    pub fn events(&self) -> Vec<DelineationEvent> {
        if self.run.benchmark != Benchmark::Mrpdln {
            return Vec::new();
        }
        events_from_marks(&self.run.outputs)
    }

    /// The activity vector of the whole recording: the per-shard activity
    /// vectors folded op-weighted into one
    /// ([`ulp_power::Activity::fold_weighted`]) at merge time. Equal (up
    /// to floating-point rounding) to `Activity::from_stats` of the
    /// summed statistics, since both weight every per-op rate by the ops
    /// that produced it.
    pub fn activity(&self) -> Activity {
        self.activity
    }

    /// Energy to process the recording at workload `w_mops` under
    /// `model`, in microjoules — the folded activity priced by the power
    /// model. `None` if the workload exceeds the design's feasible range.
    pub fn energy_uj(&self, model: &PowerModel, w_mops: f64) -> Option<f64> {
        model.energy_for_ops_uj(&self.activity, w_mops, self.run.stats.useful_ops())
    }
}

/// Extracts globally-indexed events from full-recording mark buffers.
fn events_from_marks(outputs: &[Vec<u16>]) -> Vec<DelineationEvent> {
    let mut events = Vec::new();
    for (channel, marks) in outputs.iter().enumerate() {
        for (index, &word) in marks.iter().enumerate() {
            if word == u16::from(Mark::Peak) || word == u16::from(Mark::Pit) {
                events.push(DelineationEvent {
                    channel,
                    index,
                    is_peak: word == u16::from(Mark::Peak),
                });
            }
        }
    }
    events
}

/// Field-wise sum of shard statistics: every counter adds up, so the
/// merged [`SimStats`] reports exactly the work the shards performed
/// together. `num_cores` is taken from the first shard (all shards run the
/// same platform shape); per-core counters merge index-wise.
///
/// # Panics
///
/// Panics if `parts` is empty or mixes designs (some shards with
/// synchronizer statistics, some without).
pub fn sum_stats(parts: &[&SimStats]) -> SimStats {
    let first = parts.first().expect("at least one shard");
    let mut total = SimStats {
        cycles: 0,
        num_cores: first.num_cores,
        cores: vec![Default::default(); first.cores.len()],
        core_total: Default::default(),
        im: Default::default(),
        dm: Default::default(),
        ixbar: Default::default(),
        dxbar: Default::default(),
        sync: first.sync.map(|_| Default::default()),
        lockstep_width_sum: 0,
        lockstep_width_cycles: 0,
    };
    for part in parts {
        assert_eq!(
            part.sync.is_some(),
            total.sync.is_some(),
            "cannot sum across designs"
        );
        total.cycles += part.cycles;
        total.core_total.merge(&part.core_total);
        for (t, p) in total.cores.iter_mut().zip(&part.cores) {
            t.merge(p);
        }
        total.im.merge(&part.im);
        total.dm.merge(&part.dm);
        total.ixbar.merge(&part.ixbar);
        total.dxbar.merge(&part.dxbar);
        if let (Some(t), Some(p)) = (&mut total.sync, &part.sync) {
            t.merge(p);
        }
        total.lockstep_width_sum += part.lockstep_width_sum;
        total.lockstep_width_cycles += part.lockstep_width_cycles;
    }
    total
}

/// Merges a completed [`ShardedRun`] into one logical run over the whole
/// recording.
///
/// The returned [`MergedRun`]'s `run.expected` is the **full-recording
/// golden pass** (computed in Rust over the entire signal, unconstrained
/// by platform buffer sizes), so `run.verify()` asserts the sharding
/// subsystem's equivalence claim: with an adequate halo, splitting the
/// time axis and stitching the partial outputs loses nothing.
///
/// # Errors
///
/// [`RunnerError::OutputMismatch`] is *not* raised here — like the
/// kernel runner, mismatches are left to [`BenchmarkRun::verify`] so
/// callers can inspect the stitched data.
pub fn merge(sharded: &ShardedRun) -> MergedRun {
    let expected = golden_outputs(
        sharded.config.benchmark,
        &sharded.config.workload,
        sharded.config.cores,
    );
    merge_with_golden(sharded, expected)
}

/// [`merge`] with a caller-supplied full-recording golden pass, for
/// callers that merge many sharded runs over the same recording (the
/// sweep's shard axis) and want to compute the golden once per
/// (benchmark, cores) instead of once per cell. `expected` must be what
/// [`golden_outputs`] returns for the run's benchmark, workload and core
/// count — anything else makes `verify()` meaningless.
pub fn merge_with_golden(sharded: &ShardedRun, expected: Vec<Vec<u16>>) -> MergedRun {
    let cores = sharded.config.cores;
    let total = sharded.plan.total();
    let mut outputs: Vec<Vec<u16>> = (0..cores).map(|_| Vec::with_capacity(total)).collect();
    for out in &sharded.shards {
        let local = out.shard.local_core();
        for (channel, stitched) in outputs.iter_mut().enumerate() {
            debug_assert_eq!(stitched.len(), out.shard.start, "gapless stitching");
            stitched.extend_from_slice(&out.run.outputs[channel][local.clone()]);
        }
    }
    let stats = sum_stats(
        &sharded
            .shards
            .iter()
            .map(|s| &s.run.stats)
            .collect::<Vec<_>>(),
    );
    // Fold each shard's activity vector, weighted by the ops it retired —
    // the recording-level input to the power model.
    let activity = Activity::fold_weighted(
        &sharded
            .shards
            .iter()
            .map(|s| (Activity::from_stats(&s.run.stats), s.run.stats.useful_ops()))
            .collect::<Vec<_>>(),
    );
    MergedRun {
        run: BenchmarkRun {
            benchmark: sharded.config.benchmark,
            with_sync: sharded.config.with_sync,
            stats,
            outputs,
            expected,
        },
        shard_cycles: sharded.shards.iter().map(|s| s.run.stats.cycles).collect(),
        plan: sharded.plan.clone(),
        activity,
    }
}

/// [`merge`] plus verification: returns the merged run only if the
/// stitched outputs are bit-identical to the full-recording golden pass.
///
/// # Errors
///
/// The [`RunnerError::OutputMismatch`] naming the first differing channel.
pub fn merge_verified(sharded: &ShardedRun) -> Result<MergedRun, RunnerError> {
    let merged = merge(sharded);
    merged.run.verify()?;
    Ok(merged)
}

/// Convenience used by sweeps and tests: the single-pass golden events of
/// a full recording, for comparison with [`MergedRun::events`].
pub fn golden_events(cfg: &WorkloadConfig, cores: usize) -> Vec<DelineationEvent> {
    events_from_marks(&golden_outputs(Benchmark::Mrpdln, cfg, cores))
}

//! Time-axis shard plans: how a long recording is cut into overlapping
//! windows that each fit one platform's data memory.

use std::fmt;
use ulp_kernels::{layout, Benchmark, WorkloadConfig};

/// One shard of a recording: the *core* sample range this shard is
/// responsible for, and the *load* range actually simulated (core plus a
/// halo of warm-up samples on each side, clipped to the recording).
///
/// Only the core region survives merging — halo samples exist so the
/// morphological filter/delineator state is re-established inside the
/// shard, and are dropped deterministically by the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard in the plan (0-based).
    pub index: usize,
    /// First sample (inclusive) of the core region.
    pub start: usize,
    /// One past the last sample of the core region.
    pub end: usize,
    /// First sample (inclusive) loaded into the platform.
    pub load_start: usize,
    /// One past the last loaded sample.
    pub load_end: usize,
}

impl Shard {
    /// Samples this shard is responsible for after merging.
    pub fn core_len(&self) -> usize {
        self.end - self.start
    }

    /// Samples simulated (core + halos).
    pub fn load_len(&self) -> usize {
        self.load_end - self.load_start
    }

    /// The core region in shard-local coordinates (indices into the
    /// shard's output buffer).
    pub fn local_core(&self) -> std::ops::Range<usize> {
        (self.start - self.load_start)..(self.end - self.load_start)
    }
}

/// Why a plan could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The recording has no samples.
    EmptyRecording,
    /// `samples_per_shard` was zero.
    ZeroShardLength,
    /// A shard's load window (core + halos) exceeds the platform buffer
    /// capacity ([`layout::MAX_N`]).
    ShardTooLarge {
        /// The offending load length.
        load_len: usize,
    },
    /// A shard's load window is below the kernels' minimum of 4 samples.
    ShardTooSmall {
        /// The offending load length.
        load_len: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptyRecording => write!(f, "recording has no samples"),
            PlanError::ZeroShardLength => write!(f, "samples per shard must be positive"),
            PlanError::ShardTooLarge { load_len } => write!(
                f,
                "shard load window of {load_len} samples exceeds the platform \
                 buffer capacity of {} (shorten the shard or the halo)",
                layout::MAX_N
            ),
            PlanError::ShardTooSmall { load_len } => write!(
                f,
                "shard load window of {load_len} samples is below the kernels' \
                 minimum of 4"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The halo (overlap) a benchmark needs so every core-region output of a
/// shard is bit-identical to the full-recording pass: the dependency
/// radius of the benchmark's operator chain.
///
/// * **MRPFLTR** — opening/closing chains widen the input window of one
///   output by `l - 1` per stage: `(Lo-1) + (Lc-1) + (Ln-1)`.
/// * **MRPDLN** — the morphological derivative at the larger scale reaches
///   `max(s_small, s_large)` samples, plus one for the local-extremum
///   test.
/// * **SQRT32** — point-wise; no halo at all.
pub fn required_halo(benchmark: Benchmark, cfg: &WorkloadConfig) -> usize {
    match benchmark {
        Benchmark::Mrpfltr => {
            (cfg.mrpfltr.baseline_open - 1)
                + (cfg.mrpfltr.baseline_close - 1)
                + (cfg.mrpfltr.noise - 1)
        }
        Benchmark::Mrpdln => cfg.delineation.scale_small.max(cfg.delineation.scale_large) + 1,
        Benchmark::Sqrt32 => 0,
    }
}

/// A complete sharding of one recording: contiguous, non-overlapping core
/// regions covering `0..total`, each extended by `halo` samples of overlap
/// on both sides (clipped at the recording edges, where the platform and
/// the golden model clip their operator windows identically).
///
/// Core lengths are balanced: `ceil(total / samples_per_shard)` shards of
/// as-equal-as-possible length, so a remainder never produces a degenerate
/// tail shard.
///
/// ```
/// use ulp_shard::ShardPlan;
///
/// // 1000 samples in ≤ 200-sample shards with a 40-sample halo.
/// let plan = ShardPlan::new(1000, 200, 40).unwrap();
/// assert_eq!(plan.len(), 5);
/// assert_eq!(plan.total(), 1000);
/// // Core regions tile the recording exactly...
/// assert_eq!(plan.shards()[0].start, 0);
/// assert_eq!(plan.shards()[4].end, 1000);
/// // ...while load windows overlap by the halo (clipped at the edges).
/// let s1 = plan.shards()[1];
/// assert_eq!(s1.load_start, s1.start - 40);
/// assert!(plan.shards().iter().all(|s| s.load_len() <= 200 + 2 * 40));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    total: usize,
    halo: usize,
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Plans `total` samples into shards of at most `samples_per_shard`
    /// core samples with `halo` samples of overlap per side.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when the recording is empty, the shard length is
    /// zero, or a resulting load window falls outside the platform's
    /// 4..=[`layout::MAX_N`] sample range.
    pub fn new(
        total: usize,
        samples_per_shard: usize,
        halo: usize,
    ) -> Result<ShardPlan, PlanError> {
        if total == 0 {
            return Err(PlanError::EmptyRecording);
        }
        if samples_per_shard == 0 {
            return Err(PlanError::ZeroShardLength);
        }
        let count = total.div_ceil(samples_per_shard);
        let base = total / count;
        let extra = total % count; // the first `extra` shards get +1
        let mut shards = Vec::with_capacity(count);
        let mut start = 0;
        for index in 0..count {
            let core_len = base + usize::from(index < extra);
            let end = start + core_len;
            let shard = Shard {
                index,
                start,
                end,
                load_start: start.saturating_sub(halo),
                load_end: (end + halo).min(total),
            };
            let load_len = shard.load_len();
            if load_len > layout::MAX_N {
                return Err(PlanError::ShardTooLarge { load_len });
            }
            if load_len < 4 {
                return Err(PlanError::ShardTooSmall { load_len });
            }
            shards.push(shard);
            start = end;
        }
        Ok(ShardPlan {
            total,
            halo,
            shards,
        })
    }

    /// [`ShardPlan::new`] with the halo `benchmark` requires for bit-exact
    /// merging ([`required_halo`]), over the recording described by
    /// `workload` (its `n` is the recording length).
    ///
    /// # Errors
    ///
    /// See [`ShardPlan::new`].
    pub fn for_workload(
        benchmark: Benchmark,
        workload: &WorkloadConfig,
        samples_per_shard: usize,
    ) -> Result<ShardPlan, PlanError> {
        ShardPlan::new(
            workload.n,
            samples_per_shard,
            required_halo(benchmark, workload),
        )
    }

    /// Recording length in samples.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Halo samples per side.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan has no shards (never true for a valid plan).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shards, ordered by time.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_tile_the_recording_exactly() {
        for (total, per_shard, halo) in [
            (1000, 200, 40),
            (2048, 256, 10),
            (10, 3, 2),
            (7, 7, 0),
            (300, 299, 1),
        ] {
            let plan = ShardPlan::new(total, per_shard, halo).unwrap();
            assert_eq!(plan.shards()[0].start, 0);
            assert_eq!(plan.shards().last().unwrap().end, total);
            for pair in plan.shards().windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous cores");
            }
            for s in plan.shards() {
                assert!(s.core_len() <= per_shard);
                assert!(s.load_start <= s.start && s.end <= s.load_end);
                assert!(s.start - s.load_start <= halo);
                assert!(s.load_end - s.end <= halo);
                // Interior shards carry the full halo.
                if s.start >= halo {
                    assert_eq!(s.start - s.load_start, halo);
                }
                if s.end + halo <= total {
                    assert_eq!(s.load_end - s.end, halo);
                }
                let local = s.local_core();
                assert_eq!(local.len(), s.core_len());
            }
        }
    }

    #[test]
    fn uneven_split_balances_core_lengths() {
        // 10 samples at ≤ 3 per shard → 4 shards of 3,3,2,2 — never a
        // degenerate 1-sample tail.
        let plan = ShardPlan::new(10, 3, 2).unwrap();
        let lens: Vec<usize> = plan.shards().iter().map(Shard::core_len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn halo_longer_than_the_shard_is_legal() {
        let plan = ShardPlan::new(200, 40, 100).unwrap();
        assert_eq!(plan.len(), 5);
        for s in plan.shards() {
            assert!(s.load_len() <= layout::MAX_N);
            // The middle shard's load window spans the whole recording.
        }
        assert_eq!(plan.shards()[2].load_start, 0);
        assert_eq!(plan.shards()[2].load_end, 200);
    }

    #[test]
    fn single_shard_degenerate_plan() {
        let plan = ShardPlan::new(100, 256, 40).unwrap();
        assert_eq!(plan.len(), 1);
        let s = plan.shards()[0];
        assert_eq!((s.start, s.end), (0, 100));
        // Halos clip to the recording: nothing to warm up from.
        assert_eq!((s.load_start, s.load_end), (0, 100));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert_eq!(ShardPlan::new(0, 10, 0), Err(PlanError::EmptyRecording));
        assert_eq!(ShardPlan::new(10, 0, 0), Err(PlanError::ZeroShardLength));
        assert_eq!(
            ShardPlan::new(1000, 250, 40),
            Err(PlanError::ShardTooLarge { load_len: 330 })
        );
        assert_eq!(
            ShardPlan::new(6, 2, 0),
            Err(PlanError::ShardTooSmall { load_len: 2 })
        );
        // Errors render human-readable messages.
        assert!(PlanError::ShardTooLarge { load_len: 330 }
            .to_string()
            .contains("330"));
    }

    #[test]
    fn required_halo_matches_operator_radii() {
        let cfg = WorkloadConfig::paper();
        // (15-1) + (23-1) + (5-1)
        assert_eq!(required_halo(Benchmark::Mrpfltr, &cfg), 40);
        // max(3, 9) + 1
        assert_eq!(required_halo(Benchmark::Mrpdln, &cfg), 10);
        assert_eq!(required_halo(Benchmark::Sqrt32, &cfg), 0);
    }

    #[test]
    fn for_workload_uses_the_required_halo() {
        let mut cfg = WorkloadConfig::paper();
        cfg.n = 2048;
        let plan = ShardPlan::for_workload(Benchmark::Mrpdln, &cfg, 256).unwrap();
        assert_eq!(plan.halo(), 10);
        assert_eq!(plan.total(), 2048);
        assert_eq!(plan.len(), 8);
    }
}

//! Recording-level observer artifacts: merging per-shard [`JobArtifacts`]
//! back onto the merged run's global cycle/sample axes.
//!
//! The merge of outputs, statistics and events ([`crate::merge`]) makes the
//! *numbers* of a sharded run recording-scale; this module does the same
//! for the *instrumentation*. Every shard job runs its observers over its
//! own local cycle axis (cycle 1 is the shard's first cycle) and its own
//! local sample window; stitching them back requires the per-shard cycle
//! offsets that only the merge knows:
//!
//! * [`MergedHeatMap`] — every shard's [`BankHeatMap`] rows re-indexed to
//!   the merged recording's cycle axis (shard `i`'s rows start at the sum
//!   of the preceding shards' cycle counts), each row carrying its global
//!   `[start_cycle, end_cycle)` window explicitly, so per-bank totals and
//!   time-resolved heat maps survive sharding losslessly;
//! * [`MergedPcTrace`] — per-shard PC-trace rows concatenated in plan
//!   order as labeled [`TraceSegment`]s with global cycle and sample
//!   offsets;
//! * [`ShardVcd`] — VCD texts cannot be spliced (each dump has its own
//!   header and zero-based timebase), so they are kept whole, one per
//!   shard, labeled with the shard's global offsets.
//!
//! [`BankHeatMap`]: ulp_platform::BankHeatMap
//! [`JobArtifacts`]: ulp_service::JobArtifacts

use crate::merge::MergeError;
use crate::runner::ShardOutput;
use ulp_service::{JobArtifacts, ObserverSelection};

/// One heat-map row on the merged recording's global cycle axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatMapRow {
    /// Shard (plan index) the row was recorded by.
    pub shard: usize,
    /// First cycle (0-based) of the merged recording this row covers.
    pub start_cycle: u64,
    /// One past the last covered cycle.
    pub end_cycle: u64,
    /// Served core accesses per DM bank within the window.
    pub banks: Vec<u64>,
}

/// A recording-level per-bank DM heat map: every shard's rows re-indexed
/// from shard-local to global cycle windows.
///
/// Rows are in global cycle order and tile the merged cycle axis gaplessly
/// (`rows[i+1].start_cycle == rows[i].end_cycle`, starting at 0 and ending
/// at the merged run's total cycles). Shard boundaries flush partial
/// windows, so a row may cover fewer than `window` cycles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergedHeatMap {
    /// Cycles per full row (the job's [`ObserverSelection::BankHeatMap`]
    /// window).
    pub window: u64,
    /// The re-indexed rows, in global cycle order.
    pub rows: Vec<HeatMapRow>,
}

impl MergedHeatMap {
    /// Number of DM banks per row (0 for an empty map).
    pub fn banks(&self) -> usize {
        self.rows.first().map_or(0, |r| r.banks.len())
    }

    /// Total served accesses per bank over the whole recording — the sum
    /// of every shard's per-bank totals, exactly.
    pub fn totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.banks()];
        for row in &self.rows {
            for (t, &v) in totals.iter_mut().zip(&row.banks) {
                *t += v;
            }
        }
        totals
    }
}

/// One shard's PC-trace rows, labeled with where the shard sits in the
/// merged recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSegment {
    /// Shard (plan index) the rows were recorded by.
    pub shard: usize,
    /// Global cycle of the shard's first simulated cycle: the sum of the
    /// preceding shards' cycle counts.
    pub cycle_offset: u64,
    /// First *loaded* sample (global recording index) of the shard — the
    /// traced PCs process the shard's load window, halo included.
    pub sample_offset: usize,
    /// The traced rows: one per cycle, one fetch PC per core (`None` for
    /// sleeping/halted/non-fetch cycles).
    pub rows: Vec<Vec<Option<u16>>>,
}

/// Per-shard PC traces concatenated in plan order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergedPcTrace {
    /// One segment per shard, in plan (time) order.
    pub segments: Vec<TraceSegment>,
}

impl MergedPcTrace {
    /// Total traced rows across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.rows.len()).sum()
    }

    /// Whether no cycle was traced at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rows of every segment, concatenated in plan order.
    pub fn rows(&self) -> impl Iterator<Item = &Vec<Option<u16>>> {
        self.segments.iter().flat_map(|s| s.rows.iter())
    }
}

/// One shard's VCD dump, kept whole (a VCD has its own header and
/// zero-based timebase, so texts are labeled rather than spliced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardVcd {
    /// Shard (plan index) the dump came from.
    pub shard: usize,
    /// Global cycle the dump's time 0 corresponds to.
    pub cycle_offset: u64,
    /// First loaded sample (global recording index) of the shard.
    pub sample_offset: usize,
    /// The VCD text.
    pub vcd: String,
}

/// Observer output of a whole (possibly sharded) recording, mirroring
/// [`ObserverSelection`] — what [`crate::MergedRun::artifacts`] and the
/// sweep's cells carry.
#[derive(Debug, Clone, Default)]
pub enum MergedArtifacts {
    /// No observers were attached.
    #[default]
    None,
    /// Per-shard PC traces with global offsets.
    PcTrace(MergedPcTrace),
    /// Labeled per-shard VCD dumps.
    Vcd(Vec<ShardVcd>),
    /// The recording-level per-bank heat map.
    BankHeatMap(MergedHeatMap),
}

impl MergedArtifacts {
    /// The heat map, when the run carried a
    /// [`ObserverSelection::BankHeatMap`].
    pub fn bank_heat_map(&self) -> Option<&MergedHeatMap> {
        match self {
            MergedArtifacts::BankHeatMap(map) => Some(map),
            _ => None,
        }
    }

    /// The PC trace, when the run carried a
    /// [`ObserverSelection::PcTrace`].
    pub fn pc_trace(&self) -> Option<&MergedPcTrace> {
        match self {
            MergedArtifacts::PcTrace(trace) => Some(trace),
            _ => None,
        }
    }

    /// The per-shard VCD dumps, when the run carried
    /// [`ObserverSelection::Vcd`].
    pub fn vcds(&self) -> Option<&[ShardVcd]> {
        match self {
            MergedArtifacts::Vcd(vcds) => Some(vcds),
            _ => None,
        }
    }

    /// Diagnostic name of the artifact kind.
    pub fn kind(&self) -> &'static str {
        match self {
            MergedArtifacts::None => "none",
            MergedArtifacts::PcTrace(_) => "pc-trace",
            MergedArtifacts::Vcd(_) => "vcd",
            MergedArtifacts::BankHeatMap(_) => "bank-heat-map",
        }
    }

    /// Lifts a *single-window* job's artifacts onto the merged
    /// representation: one segment/dump at offset 0, heat-map rows spanning
    /// `cycles` in `observers`' window. This is how the sweep gives its
    /// unsharded cells the same artifact type as its sharded ones.
    pub fn from_single(
        artifacts: JobArtifacts,
        observers: &ObserverSelection,
        cycles: u64,
    ) -> MergedArtifacts {
        match artifacts {
            JobArtifacts::None => MergedArtifacts::None,
            JobArtifacts::PcTrace(rows) => MergedArtifacts::PcTrace(MergedPcTrace {
                segments: vec![TraceSegment {
                    shard: 0,
                    cycle_offset: 0,
                    sample_offset: 0,
                    rows,
                }],
            }),
            JobArtifacts::Vcd(vcd) => MergedArtifacts::Vcd(vec![ShardVcd {
                shard: 0,
                cycle_offset: 0,
                sample_offset: 0,
                vcd,
            }]),
            JobArtifacts::BankHeatMap(rows) => {
                let window = match observers {
                    ObserverSelection::BankHeatMap { window } => *window,
                    // The artifact proves a heat map was attached; an
                    // inconsistent selection only loses the row width.
                    _ => cycles.max(1),
                };
                MergedArtifacts::BankHeatMap(MergedHeatMap {
                    window,
                    rows: reindex_heat_map(0, 0, cycles, window, &rows),
                })
            }
        }
    }
}

/// Re-indexes one shard's heat-map rows onto the global cycle axis: row
/// `j` covered local cycles `[j*window, (j+1)*window)` (the last row the
/// remainder up to `cycles`), shifted by `offset`.
fn reindex_heat_map(
    shard: usize,
    offset: u64,
    cycles: u64,
    window: u64,
    rows: &[Vec<u64>],
) -> Vec<HeatMapRow> {
    let count = rows.len();
    rows.iter()
        .enumerate()
        .map(|(j, banks)| {
            let start = (j as u64 * window).min(cycles);
            // The shard's last row is its run-end flush: it ends exactly at
            // the shard's cycle count, keeping the global axis gapless.
            let end = if j + 1 == count {
                cycles
            } else {
                ((j as u64 + 1) * window).min(cycles)
            };
            HeatMapRow {
                shard,
                start_cycle: offset + start,
                end_cycle: offset + end,
                banks: banks.clone(),
            }
        })
        .collect()
}

/// Merges the per-shard artifacts of a completed sharded run onto the
/// merged recording's global axes. `shards` must be in plan order (the
/// caller — [`crate::merge_with_golden`] — has already validated order and
/// shape).
///
/// # Errors
///
/// [`MergeError::ArtifactKindMismatch`] when a shard's artifacts do not
/// mirror `observers` (a shard job ran with a different selection), and
/// [`MergeError::HeatMapShapeMismatch`] when shards disagree on the bank
/// count.
pub(crate) fn merge_artifacts(
    observers: &ObserverSelection,
    shards: &[ShardOutput],
) -> Result<MergedArtifacts, MergeError> {
    for (index, out) in shards.iter().enumerate() {
        if out.artifacts.kind() != observers.artifact_kind() {
            return Err(MergeError::ArtifactKindMismatch {
                shard: index,
                expected: observers.artifact_kind(),
                found: out.artifacts.kind(),
            });
        }
    }
    let offsets = cycle_offsets(shards);
    Ok(match observers {
        ObserverSelection::None => MergedArtifacts::None,
        ObserverSelection::PcTrace { .. } => {
            let segments = shards
                .iter()
                .zip(&offsets)
                .map(|(out, &cycle_offset)| TraceSegment {
                    shard: out.shard.index,
                    cycle_offset,
                    sample_offset: out.shard.load_start,
                    rows: out.artifacts.pc_trace().unwrap_or_default().to_vec(),
                })
                .collect();
            MergedArtifacts::PcTrace(MergedPcTrace { segments })
        }
        ObserverSelection::Vcd => {
            let vcds = shards
                .iter()
                .zip(&offsets)
                .map(|(out, &cycle_offset)| ShardVcd {
                    shard: out.shard.index,
                    cycle_offset,
                    sample_offset: out.shard.load_start,
                    vcd: out.artifacts.vcd().unwrap_or_default().to_string(),
                })
                .collect();
            MergedArtifacts::Vcd(vcds)
        }
        ObserverSelection::BankHeatMap { window } => {
            let mut rows = Vec::new();
            let mut banks: Option<usize> = None;
            for (out, &offset) in shards.iter().zip(&offsets) {
                let shard_rows = out.artifacts.bank_heat_map().unwrap_or_default();
                if let Some(first) = shard_rows.first() {
                    let expected = *banks.get_or_insert(first.len());
                    if first.len() != expected {
                        return Err(MergeError::HeatMapShapeMismatch {
                            shard: out.shard.index,
                            expected_banks: expected,
                            found_banks: first.len(),
                        });
                    }
                }
                rows.extend(reindex_heat_map(
                    out.shard.index,
                    offset,
                    out.run.stats.cycles,
                    *window,
                    shard_rows,
                ));
            }
            MergedArtifacts::BankHeatMap(MergedHeatMap {
                window: *window,
                rows,
            })
        }
    })
}

/// Global cycle offset of each shard: the prefix sums of the per-shard
/// cycle counts, in plan order.
fn cycle_offsets(shards: &[ShardOutput]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(shards.len());
    let mut offset = 0u64;
    for out in shards {
        offsets.push(offset);
        offset += out.run.stats.cycles;
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reindex_is_gapless_and_clamps_the_tail() {
        // 250 cycles in 100-cycle windows → rows of 100, 100, 50.
        let rows = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let out = reindex_heat_map(2, 1000, 250, 100, &rows);
        assert_eq!(out.len(), 3);
        assert_eq!((out[0].start_cycle, out[0].end_cycle), (1000, 1100));
        assert_eq!((out[1].start_cycle, out[1].end_cycle), (1100, 1200));
        assert_eq!((out[2].start_cycle, out[2].end_cycle), (1200, 1250));
        assert!(out.iter().all(|r| r.shard == 2));
    }

    #[test]
    fn from_single_lifts_each_kind_at_offset_zero() {
        let sel = ObserverSelection::BankHeatMap { window: 64 };
        let lifted =
            MergedArtifacts::from_single(JobArtifacts::BankHeatMap(vec![vec![7, 0]]), &sel, 40);
        let map = lifted.bank_heat_map().expect("a heat map");
        assert_eq!(map.window, 64);
        assert_eq!(map.rows.len(), 1);
        assert_eq!((map.rows[0].start_cycle, map.rows[0].end_cycle), (0, 40));
        assert_eq!(map.totals(), vec![7, 0]);

        let trace = MergedArtifacts::from_single(
            JobArtifacts::PcTrace(vec![vec![Some(3)]]),
            &ObserverSelection::PcTrace { limit: 8 },
            40,
        );
        let trace = trace.pc_trace().expect("a trace");
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.segments[0].cycle_offset, 0);

        let none = MergedArtifacts::from_single(JobArtifacts::None, &ObserverSelection::None, 40);
        assert!(matches!(none, MergedArtifacts::None));
        assert_eq!(none.kind(), "none");
    }
}

//! Executing a shard plan as batch-service jobs.

use crate::plan::{Shard, ShardPlan};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use ulp_kernels::{Benchmark, BenchmarkRun, RunnerError, WorkloadConfig};
use ulp_platform::ExecTier;
use ulp_service::{
    JobArtifacts, JobError, JobSpec, ObserverSelection, Priority, ServiceConfig, ServiceStats,
    SimService, TenantId,
};
use ulp_telemetry::{EventKind, Telemetry, CLIENT_TRACK};

/// What to run over the recording: the benchmark, the platform design and
/// core count every shard job uses, and the observers each shard carries.
#[derive(Debug, Clone)]
pub struct ShardRunConfig {
    /// The benchmark kernel.
    pub benchmark: Benchmark,
    /// `true` = improved design (hardware synchronizer).
    pub with_sync: bool,
    /// Cores per platform (1..=8); one recording channel per core.
    pub cores: usize,
    /// The *full recording* workload: its `n` is the recording length
    /// (typically far beyond one platform's buffer capacity) and must
    /// equal the plan's total.
    pub workload: WorkloadConfig,
    /// Instrumentation attached to every shard job (e.g. a
    /// [`ObserverSelection::BankHeatMap`]).
    pub observers: ObserverSelection,
    /// Execution tier every shard job runs under (results are
    /// bit-identical across tiers; shards of one recording may therefore
    /// even mix tiers without affecting the merge).
    pub exec_tier: ExecTier,
    /// The tenant every shard job is submitted on behalf of — the
    /// recording's owner in a shared, quota-governed pool.
    pub tenant: TenantId,
    /// Telemetry the run publishes into: each gathered shard records a
    /// `merged` event on the client track, and a private pool started by
    /// [`ShardRunner::run_local`] traces its workers through the same
    /// handle. Disabled by default (zero-cost).
    pub telemetry: Telemetry,
    /// Checkpoint cadence in simulated cycles: `Some(n)` makes every
    /// shard job migratable ([`JobSpec::checkpoint_every`]) — it
    /// snapshots its platform every `n` cycles, and a killed or
    /// preempted worker's in-flight shard re-queues from its latest
    /// checkpoint instead of restarting. `None` (the default) runs
    /// shards without checkpoints.
    pub checkpoint_every: Option<u64>,
    /// Directory the private [`ShardRunner::run_local`] pool persists
    /// checkpoint blobs into ([`ServiceConfig::checkpoint_dir`];
    /// best-effort, latest-wins per job). Ignored by
    /// [`ShardRunner::run`], which executes on a caller-owned service.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Fault injection for the private [`ShardRunner::run_local`] pool:
    /// `Some(w)` marks worker `w` for failure before any shard is
    /// submitted ([`ulp_service::SimService::inject_worker_failure`]).
    /// The worker parks its first migratable shard at that shard's first
    /// checkpoint and exits; the pool is sized to at least two workers so
    /// the survivors finish the recording. Requires
    /// [`ShardRunConfig::checkpoint_every`] to have any effect — without
    /// checkpoints the flag is never observed. Ignored by
    /// [`ShardRunner::run`].
    pub inject_failure: Option<usize>,
}

impl ShardRunConfig {
    /// A plain configuration with no observers.
    pub fn new(
        benchmark: Benchmark,
        with_sync: bool,
        cores: usize,
        workload: WorkloadConfig,
    ) -> ShardRunConfig {
        ShardRunConfig {
            benchmark,
            with_sync,
            cores,
            workload,
            observers: ObserverSelection::None,
            exec_tier: ExecTier::Interpreted,
            tenant: TenantId::DEFAULT,
            telemetry: Telemetry::disabled(),
            checkpoint_every: None,
            checkpoint_dir: None,
            inject_failure: None,
        }
    }

    /// Attaches an observer selection to every shard job; the merge
    /// stitches the per-shard artifacts back onto the recording's global
    /// axes ([`crate::MergedRun::artifacts`]).
    #[must_use]
    pub fn with_observers(mut self, observers: ObserverSelection) -> ShardRunConfig {
        self.observers = observers;
        self
    }

    /// Selects the execution tier of every shard job.
    #[must_use]
    pub fn with_exec_tier(mut self, tier: ExecTier) -> ShardRunConfig {
        self.exec_tier = tier;
        self
    }

    /// Tags every shard job with the recording owner's tenant, for quota
    /// and fair-share accounting on a shared pool.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> ShardRunConfig {
        self.tenant = tenant;
        self
    }

    /// Attaches a telemetry handle: gathered shards record `merged`
    /// events, and a private [`ShardRunner::run_local`] pool traces its
    /// workers into the same sink.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ShardRunConfig {
        self.telemetry = telemetry;
        self
    }

    /// Makes every shard job checkpoint (and become migratable) every
    /// `cycles` simulated cycles — see [`ShardRunConfig::checkpoint_every`].
    #[must_use]
    pub fn with_checkpoint_every(mut self, cycles: u64) -> ShardRunConfig {
        self.checkpoint_every = Some(cycles.max(1));
        self
    }

    /// Persists checkpoint blobs under `dir` on the private
    /// [`ShardRunner::run_local`] pool — see
    /// [`ShardRunConfig::checkpoint_dir`].
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> ShardRunConfig {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Marks worker `worker` of the private [`ShardRunner::run_local`]
    /// pool for failure before the first shard is submitted — see
    /// [`ShardRunConfig::inject_failure`].
    #[must_use]
    pub fn with_injected_failure(mut self, worker: usize) -> ShardRunConfig {
        self.inject_failure = Some(worker);
        self
    }
}

/// Errors of a sharded run.
#[derive(Debug)]
pub enum ShardError {
    /// The plan's recording length differs from the workload's `n`.
    PlanMismatch {
        /// Samples in the plan.
        plan_total: usize,
        /// Samples in the workload.
        workload_n: usize,
    },
    /// A shard job failed; the shard index says which.
    Job {
        /// Index of the failing shard.
        shard: usize,
        /// The underlying failure.
        error: RunnerError,
    },
    /// The service pool died (a worker panicked) before every shard
    /// finished.
    PoolDied {
        /// Shard results received before the pool died.
        completed: usize,
        /// Shards the plan expected.
        expected: usize,
    },
    /// The service returned a result whose id was never submitted by this
    /// runner — the pool had foreign submissions in flight.
    ForeignResult {
        /// The unrecognised job id.
        id: u64,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::PlanMismatch {
                plan_total,
                workload_n,
            } => write!(
                f,
                "plan covers {plan_total} samples but the workload describes {workload_n}"
            ),
            ShardError::Job { shard, error } => write!(f, "shard {shard} failed: {error}"),
            ShardError::PoolDied {
                completed,
                expected,
            } => write!(
                f,
                "the service pool died after {completed} of {expected} shards completed"
            ),
            ShardError::ForeignResult { id } => write!(
                f,
                "received result for job {id}, which this runner never submitted \
                 (the service had foreign submissions in flight)"
            ),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::PlanMismatch { .. }
            | ShardError::PoolDied { .. }
            | ShardError::ForeignResult { .. } => None,
            ShardError::Job { error, .. } => Some(error),
        }
    }
}

/// One completed shard: its time window and the benchmark run over the
/// loaded (core + halo) samples.
#[derive(Debug)]
pub struct ShardOutput {
    /// The shard's position and sample ranges.
    pub shard: Shard,
    /// The simulated run over the shard's load window.
    pub run: BenchmarkRun,
    /// Observer output of the shard job.
    pub artifacts: JobArtifacts,
}

/// All shards of one recording, completed and ordered by time — the input
/// to [`crate::merge::merge`].
#[derive(Debug)]
pub struct ShardedRun {
    /// The configuration the shards ran under.
    pub config: ShardRunConfig,
    /// The plan that produced the shards.
    pub plan: ShardPlan,
    /// One output per shard, in plan (time) order.
    pub shards: Vec<ShardOutput>,
}

/// Turns a [`ShardPlan`] into per-shard [`JobSpec`]s and streams them
/// through a [`SimService`].
///
/// Every shard becomes an ordinary service job whose workload is the full
/// recording's [`WorkloadConfig`] windowed to the shard's load range
/// ([`WorkloadConfig::windowed`]), so the pool schedules, caches and
/// steals shard jobs exactly like grid cells.
#[derive(Debug, Clone)]
pub struct ShardRunner {
    config: ShardRunConfig,
    plan: ShardPlan,
}

impl ShardRunner {
    /// Binds a plan to a run configuration.
    ///
    /// # Errors
    ///
    /// [`ShardError::PlanMismatch`] if the plan does not cover exactly the
    /// workload's recording.
    pub fn new(config: ShardRunConfig, plan: ShardPlan) -> Result<ShardRunner, ShardError> {
        if plan.total() != config.workload.n {
            return Err(ShardError::PlanMismatch {
                plan_total: plan.total(),
                workload_n: config.workload.n,
            });
        }
        Ok(ShardRunner { config, plan })
    }

    /// The bound plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The bound configuration.
    pub fn config(&self) -> &ShardRunConfig {
        &self.config
    }

    /// The per-shard service jobs, in plan order: shard `i`'s workload is
    /// the recording windowed to `load_start..load_end`. Shards run at
    /// [`Priority::High`]: the merge of this recording is blocked on its
    /// *last* shard, so on a shared pool the shards must not be starved
    /// behind a deep normal-priority grid backlog.
    pub fn job_specs(&self) -> Vec<JobSpec> {
        self.plan
            .shards()
            .iter()
            .map(|s| {
                let workload = self.config.workload.windowed(s.load_start, s.load_len());
                let spec =
                    JobSpec::new(self.config.benchmark, self.config.cores, Arc::new(workload))
                        .with_sync(self.config.with_sync)
                        .observers(self.config.observers.clone())
                        .exec_tier(self.config.exec_tier)
                        .tenant(self.config.tenant)
                        .priority(Priority::High);
                match self.config.checkpoint_every {
                    Some(cycles) => spec.checkpoint_every(cycles),
                    None => spec,
                }
            })
            .collect()
    }

    /// Runs every shard on `service` and gathers the outputs in plan
    /// order. The service streams results as workers finish; shards of
    /// different time windows execute concurrently and are re-ordered
    /// here.
    ///
    /// The service must have no other submissions in flight: this method
    /// drains one result per submitted shard, and a result whose id it
    /// never submitted is reported as [`ShardError::ForeignResult`].
    ///
    /// # Errors
    ///
    /// The first failing shard in plan order (all shards still run);
    /// [`ShardError::PoolDied`] if a service worker panicked with shards
    /// outstanding; [`ShardError::ForeignResult`] on a result this runner
    /// did not submit.
    pub fn run(self, service: &mut SimService) -> Result<ShardedRun, ShardError> {
        let specs = self.job_specs();
        let count = specs.len();
        // Explicit id→slot routing: ids are opaque tokens here, not
        // assumed contiguous, so foreign traffic is detected instead of
        // silently corrupting slot arithmetic.
        // Shards submit on the blocking path: a bounded shared pool
        // throttles the runner instead of rejecting mid-recording, and
        // the only failure left is a dead pool.
        let mut slot_of: HashMap<u64, usize> = HashMap::with_capacity(count);
        for (index, spec) in specs.into_iter().enumerate() {
            match service.submit_blocking(spec) {
                Ok(id) => {
                    slot_of.insert(id, index);
                }
                Err(_) => {
                    return Err(ShardError::PoolDied {
                        completed: 0,
                        expected: count,
                    })
                }
            }
        }
        let mut slots: Vec<Option<Result<ShardOutput, ShardError>>> =
            (0..count).map(|_| None).collect();
        // Gathering a shard is the merge step of its lifecycle: record it
        // on the client track (workers already traced claim/run).
        let track = self.config.telemetry.track(CLIENT_TRACK);
        let tier = matches!(self.config.exec_tier, ExecTier::Compiled) as u8;
        for completed in 0..count {
            let result = match service.checked_recv() {
                Ok(Some(result)) => result,
                Ok(None) | Err(_) => {
                    return Err(ShardError::PoolDied {
                        completed,
                        expected: count,
                    })
                }
            };
            let Some(&index) = slot_of.get(&result.id) else {
                return Err(ShardError::ForeignResult { id: result.id });
            };
            let shard = self.plan.shards()[index];
            if track.is_enabled() && result.outcome.is_ok() {
                track.record(
                    EventKind::Merged,
                    result.id,
                    self.config.tenant.0,
                    Priority::High.index() as u8,
                    tier,
                );
            }
            slots[index] = Some(match result.outcome {
                Ok(out) => Ok(ShardOutput {
                    shard,
                    run: out.run,
                    artifacts: out.artifacts,
                }),
                // Shard jobs never carry deadlines, so the only job-level
                // failure is a runner error — an eviction here would mean
                // the runner submitted a spec it never constructs.
                Err(JobError::Run(error)) => Err(ShardError::Job {
                    shard: index,
                    error,
                }),
                Err(JobError::Evicted { .. }) => {
                    unreachable!("shard jobs are submitted without deadlines")
                }
            });
        }
        let mut shards = Vec::with_capacity(count);
        for slot in slots {
            shards.push(slot.expect("every shard ran")?);
        }
        Ok(ShardedRun {
            config: self.config,
            plan: self.plan,
            shards,
        })
    }

    /// [`ShardRunner::run`] on a private pool of `threads` workers
    /// (`0` = one per available hardware thread), capped at the shard
    /// count.
    ///
    /// # Errors
    ///
    /// See [`ShardRunner::run`].
    pub fn run_local(self, threads: usize) -> Result<ShardedRun, ShardError> {
        self.run_local_with_stats(threads).map(|(run, _)| run)
    }

    /// [`ShardRunner::run_local`], also returning the private pool's
    /// final [`ServiceStats`] — the shard CLI surfaces the per-tenant
    /// latency rows from here.
    ///
    /// # Errors
    ///
    /// See [`ShardRunner::run`].
    pub fn run_local_with_stats(
        self,
        threads: usize,
    ) -> Result<(ShardedRun, ServiceStats), ShardError> {
        let workers = ServiceConfig::builder()
            .workers(threads)
            .build()
            .resolved_workers()
            .min(self.plan.len())
            // An injected failure costs one worker: keep at least two so
            // the survivors can finish the recording (a one-worker pool
            // with its only worker killed would strand the re-queued
            // shard).
            .max(if self.config.inject_failure.is_some() {
                2
            } else {
                1
            });
        let telemetry = self.config.telemetry.clone();
        let mut builder = ServiceConfig::builder()
            .workers(workers)
            .telemetry(telemetry);
        if let Some(dir) = &self.config.checkpoint_dir {
            builder = builder.checkpoint_dir(dir.clone());
        }
        let mut service = SimService::start(builder.build());
        if let Some(worker) = self.config.inject_failure {
            service.inject_worker_failure(worker);
        }
        let run = self.run(&mut service)?;
        Ok((run, service.finish()))
    }
}

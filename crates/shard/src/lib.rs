//! # ulp-shard — workload sharding across platform instances
//!
//! The paper evaluates one fixed 256-sample window (≈ 1 s of ECG) per
//! channel per core; real recordings run for minutes or hours — far
//! beyond one platform's data-memory budget (
//! [`ulp_kernels::layout::MAX_N`] samples per channel). This crate splits
//! one long multi-channel recording along the **time axis** into
//! overlapping shards, executes the shards as independent
//! [`ulp_service::SimService`] jobs, and merges the partial results back
//! into a single logical run:
//!
//! * [`ShardPlan`] — contiguous core regions tiling the recording, each
//!   extended by a *halo* of overlap samples so the morphological
//!   filter/delineator state is re-established inside every shard
//!   ([`required_halo`] gives the exact dependency radius per benchmark);
//! * [`ShardRunner`] — turns the plan into per-shard [`JobSpec`]s (the
//!   full-recording workload [windowed] to each shard's load range) and
//!   streams them through the service's work-stealing pool;
//! * [`merge`] — stitches per-channel outputs (dropping halo duplicates
//!   deterministically), sums [`SimStats`] into recording totals, lifts
//!   MRPDLN marks into sorted, duplicate-free [`DelineationEvent`]s,
//!   folds per-shard activity into [`ulp_power`] so energy-per-recording
//!   is a first-class figure, and merges observer artifacts
//!   ([`MergedArtifacts`]): heat-map rows re-indexed onto the
//!   recording's global cycle axis, PC-trace segments labeled with
//!   global cycle/sample offsets, per-shard VCDs kept whole and labeled.
//!
//! The subsystem's correctness anchor: with a halo of at least
//! [`required_halo`], a sharded run is **bit-identical** to a single
//! oversized golden-model pass over the whole recording — the merged
//! run's `verify()` checks exactly that, and the crate's equivalence
//! tests assert it across shard sizes and core counts.
//!
//! ```no_run
//! use ulp_kernels::{Benchmark, WorkloadConfig};
//! use ulp_shard::{merge_verified, ShardPlan, ShardRunConfig, ShardRunner};
//!
//! // A 10×-paper-length recording, sharded into ≤ 256-sample windows.
//! let mut workload = WorkloadConfig::paper();
//! workload.n = 2560;
//! let plan = ShardPlan::for_workload(Benchmark::Mrpdln, &workload, 256).unwrap();
//! let runner = ShardRunner::new(
//!     ShardRunConfig::new(Benchmark::Mrpdln, true, 8, workload),
//!     plan,
//! )
//! .unwrap();
//! let sharded = runner.run_local(0).unwrap();
//! let merged = merge_verified(&sharded).unwrap();
//! println!(
//!     "{} cycles, {} events",
//!     merged.run.stats.cycles,
//!     merged.events().len()
//! );
//! ```
//!
//! [windowed]: ulp_kernels::WorkloadConfig::windowed
//! [`JobSpec`]: ulp_service::JobSpec
//! [`SimStats`]: ulp_platform::SimStats

mod artifacts;
mod merge;
mod plan;
mod runner;

pub use artifacts::{
    HeatMapRow, MergedArtifacts, MergedHeatMap, MergedPcTrace, ShardVcd, TraceSegment,
};
pub use merge::{
    golden_events, merge, merge_verified, merge_with_golden, sum_stats, DelineationEvent,
    MergeError, MergedRun,
};
pub use plan::{required_halo, PlanError, Shard, ShardPlan};
pub use runner::{ShardError, ShardOutput, ShardRunConfig, ShardRunner, ShardedRun};

//! `shard` — plan, run and merge a long-recording workload, as JSON.
//!
//! ```text
//! shard [plan|run] [options]
//!   plan                 print the shard plan only (no simulation)
//!   run                  plan, execute on the service, merge (default)
//!   --n <samples>        recording length (default 2560 = 10× paper window)
//!   --shard <samples>    target core samples per shard (default 256)
//!   --halo <n|auto>      overlap per side (default auto = benchmark's radius)
//!   --benchmark <name>   MRPFLTR | MRPDLN | SQRT32 (default MRPDLN)
//!   --cores <n>          platform cores = recording channels (default 8)
//!   --baseline           run the design without the synchronizer
//!   --threads <n>        service workers (default: all hardware threads)
//!   --heatmap <window>   attach a per-bank DM heat map (cycles per row)
//!   --exec-tier <tier>   interpreted (default) or compiled
//!   --tenant <id>        tenant the shard jobs are submitted as (default 0)
//!   --checkpoint-every <cycles>  checkpoint every shard job's platform at
//!                        this cadence (makes shards migratable)
//!   --checkpoint-dir <path>  persist each job's latest checkpoint blob
//!                        (requires --checkpoint-every)
//!   --inject-worker-failure <w>  kill worker w at its first checkpoint
//!                        (fault-injection; requires --checkpoint-every)
//!   --trace-out <path>   write a Chrome trace-event JSON file (Perfetto
//!                        loadable; one track per service worker)
//!   --stats-json <path>  write the final service stats as one JSON object
//!   --smoke              tiny workload (CI smoke mode: short recording)
//! ```
//!
//! `run` verifies the merged outputs against a single full-recording
//! golden pass and exits non-zero on any mismatch, so the bin doubles as
//! an end-to-end equivalence check in CI. Output is one JSON object on
//! stdout.

use std::process::ExitCode;
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_platform::ExecTier;
use ulp_power::PowerModel;
use ulp_service::{ObserverSelection, TenantId};
use ulp_shard::{merge_verified, required_halo, ShardPlan, ShardRunConfig, ShardRunner};
use ulp_telemetry::Telemetry;

const USAGE: &str = "usage: shard [plan|run] [options]
  plan                 print the shard plan only (no simulation)
  run                  plan, execute on the service, merge (default)
  --n <samples>        recording length (default 2560 = 10x paper window)
  --shard <samples>    target core samples per shard (default 256)
  --halo <n|auto>      overlap per side (default auto = benchmark's radius)
  --benchmark <name>   MRPFLTR | MRPDLN | SQRT32 (default MRPDLN)
  --cores <n>          platform cores = recording channels (default 8)
  --baseline           run the design without the synchronizer
  --threads <n>        service workers (default: all hardware threads)
  --heatmap <window>   attach a per-bank DM heat map (cycles per row)
  --exec-tier <tier>   execution tier: `interpreted` (default) or
                       `compiled` (bit-identical statistics, faster)
  --tenant <id>        tenant the shard jobs are submitted as (default 0)
  --checkpoint-every <cycles>
                       checkpoint every shard job's platform at this
                       cadence in simulated cycles — shards become
                       migratable: a killed or preempted worker's
                       in-flight shard re-queues from its latest
                       checkpoint and the merge stays bit-identical
  --checkpoint-dir <path>
                       persist each job's latest checkpoint blob as
                       job-<id>.ckpt under this directory (best-effort;
                       requires --checkpoint-every)
  --inject-worker-failure <w>
                       fault injection: worker w parks its first shard at
                       that shard's first checkpoint and exits; the
                       surviving workers finish the recording (requires
                       --checkpoint-every; the pool is sized >= 2)
  --trace-out <path>   enable telemetry and write a Chrome trace-event
                       JSON file on exit (one track per service worker)
  --stats-json <path>  write the final service stats (schema 3, with
                       per-tenant rows and migration counters) as one
                       JSON object
  --smoke              tiny workload (CI smoke mode: short recording)";

#[derive(Clone)]
struct Options {
    plan_only: bool,
    n: Option<usize>,
    shard: usize,
    halo: Option<usize>,
    benchmark: Benchmark,
    cores: usize,
    with_sync: bool,
    threads: usize,
    heatmap: Option<u64>,
    exec_tier: ExecTier,
    tenant: TenantId,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    inject_worker_failure: Option<usize>,
    trace_out: Option<String>,
    stats_json: Option<String>,
    smoke: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        plan_only: false,
        n: None,
        shard: 256,
        halo: None,
        benchmark: Benchmark::Mrpdln,
        cores: 8,
        with_sync: true,
        threads: 0,
        heatmap: None,
        exec_tier: ExecTier::Interpreted,
        tenant: TenantId::DEFAULT,
        checkpoint_every: None,
        checkpoint_dir: None,
        inject_worker_failure: None,
        trace_out: None,
        stats_json: None,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    let next_value = |args: &mut dyn Iterator<Item = String>, what: &str| {
        args.next()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    let parse_num = |s: String, what: &str| -> Result<usize, String> {
        s.parse().map_err(|e| format!("bad value for {what}: {e}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "plan" => opts.plan_only = true,
            "run" => opts.plan_only = false,
            "--smoke" => opts.smoke = true,
            "--baseline" => opts.with_sync = false,
            "--n" => opts.n = Some(parse_num(next_value(&mut args, "--n")?, "--n")?),
            "--shard" => opts.shard = parse_num(next_value(&mut args, "--shard")?, "--shard")?,
            "--halo" => {
                let v = next_value(&mut args, "--halo")?;
                opts.halo = if v == "auto" {
                    None
                } else {
                    Some(parse_num(v, "--halo")?)
                };
            }
            "--benchmark" => {
                let name = next_value(&mut args, "--benchmark")?;
                opts.benchmark = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                    .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
            }
            "--cores" => {
                opts.cores = parse_num(next_value(&mut args, "--cores")?, "--cores")?;
                if opts.cores == 0 || opts.cores > 8 {
                    return Err(format!("core count {} outside 1..=8", opts.cores));
                }
            }
            "--threads" => {
                opts.threads = parse_num(next_value(&mut args, "--threads")?, "--threads")?;
            }
            "--exec-tier" => {
                opts.exec_tier = next_value(&mut args, "--exec-tier")?
                    .parse()
                    .map_err(|e| format!("bad value for --exec-tier: {e}"))?;
            }
            "--tenant" => {
                opts.tenant =
                    TenantId(parse_num(next_value(&mut args, "--tenant")?, "--tenant")? as u32);
            }
            "--checkpoint-every" => {
                let cycles = parse_num(
                    next_value(&mut args, "--checkpoint-every")?,
                    "--checkpoint-every",
                )? as u64;
                if cycles == 0 {
                    return Err("checkpoint cadence must be positive".into());
                }
                opts.checkpoint_every = Some(cycles);
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(next_value(&mut args, "--checkpoint-dir")?);
            }
            "--inject-worker-failure" => {
                opts.inject_worker_failure = Some(parse_num(
                    next_value(&mut args, "--inject-worker-failure")?,
                    "--inject-worker-failure",
                )?);
            }
            "--trace-out" => {
                opts.trace_out = Some(next_value(&mut args, "--trace-out")?);
            }
            "--stats-json" => {
                opts.stats_json = Some(next_value(&mut args, "--stats-json")?);
            }
            "--heatmap" => {
                let window = parse_num(next_value(&mut args, "--heatmap")?, "--heatmap")? as u64;
                if window == 0 {
                    return Err("heat-map window must be positive".into());
                }
                opts.heatmap = Some(window);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn json_u64_list(values: impl IntoIterator<Item = u64>) -> String {
    let items: Vec<String> = values.into_iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn plan_json(plan: &ShardPlan) -> String {
    let shards: Vec<String> = plan
        .shards()
        .iter()
        .map(|s| {
            format!(
                "{{\"index\":{},\"start\":{},\"end\":{},\"load_start\":{},\"load_end\":{}}}",
                s.index, s.start, s.end, s.load_start, s.load_end
            )
        })
        .collect();
    format!(
        "{{\"total\":{},\"halo\":{},\"shards\":[{}]}}",
        plan.total(),
        plan.halo(),
        shards.join(",")
    )
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("shard: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut workload = if opts.smoke {
        WorkloadConfig::quick_test()
    } else {
        WorkloadConfig::paper()
    };
    workload.n = opts.n.unwrap_or(if opts.smoke { 512 } else { 2560 });
    let halo = opts
        .halo
        .unwrap_or_else(|| required_halo(opts.benchmark, &workload));

    let plan = match ShardPlan::new(workload.n, opts.shard, halo) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("shard: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.plan_only {
        println!(
            "{{\"benchmark\":\"{}\",\"plan\":{}}}",
            opts.benchmark.name(),
            plan_json(&plan)
        );
        return ExitCode::SUCCESS;
    }

    // Telemetry is on only when a trace was requested; the disabled
    // handle keeps every record call at a single branch.
    let telemetry = if opts.trace_out.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mut config = ShardRunConfig::new(opts.benchmark, opts.with_sync, opts.cores, workload)
        .with_exec_tier(opts.exec_tier)
        .with_tenant(opts.tenant)
        .with_telemetry(telemetry.clone());
    if let Some(window) = opts.heatmap {
        config.observers = ObserverSelection::BankHeatMap { window };
    }
    if opts.checkpoint_every.is_none()
        && (opts.checkpoint_dir.is_some() || opts.inject_worker_failure.is_some())
    {
        eprintln!("shard: --checkpoint-dir and --inject-worker-failure require --checkpoint-every");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if let Some(cycles) = opts.checkpoint_every {
        config = config.with_checkpoint_every(cycles);
    }
    if let Some(dir) = &opts.checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("shard: creating --checkpoint-dir {dir}: {e}");
            return ExitCode::from(2);
        }
        config = config.with_checkpoint_dir(dir);
    }
    if let Some(worker) = opts.inject_worker_failure {
        config = config.with_injected_failure(worker);
    }
    let runner = match ShardRunner::new(config, plan.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("shard: {e}");
            return ExitCode::from(2);
        }
    };
    let start = std::time::Instant::now();
    let (sharded, service_stats) = match runner.run_local_with_stats(opts.threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shard: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Exporter artifacts come out before merge verification so a
    // divergent run still leaves its trace behind for diagnosis.
    if let Some(path) = &opts.trace_out {
        telemetry.collect();
        if let Err(e) = std::fs::write(path, telemetry.chrome_trace()) {
            eprintln!("shard: writing --trace-out {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.stats_json {
        if let Err(e) = std::fs::write(path, service_stats.to_json()) {
            eprintln!("shard: writing --stats-json {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let merged = match merge_verified(&sharded) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("shard: sharded run diverged from the golden pass: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();
    // Recording-level heat map: the merge already re-indexed every
    // shard's rows onto the global cycle axis.
    let heatmap = merged.artifacts.bank_heat_map();

    let stats = &merged.run.stats;
    let model = PowerModel::calibrated_default();
    // Price the recording at the paper's Table I workload of 8 MOps/s.
    let energy = merged.energy_uj(&model, 8.0);
    let mut fields = vec![
        "\"schema\":2".to_string(),
        format!("\"benchmark\":\"{}\"", opts.benchmark.name()),
        format!("\"tenant\":{}", opts.tenant),
        format!(
            "\"design\":\"{}\"",
            if opts.with_sync { "sync" } else { "baseline" }
        ),
        format!("\"cores\":{}", opts.cores),
        format!("\"plan\":{}", plan_json(&plan)),
        format!("\"cycles\":{}", stats.cycles),
        format!("\"useful_ops\":{}", stats.useful_ops()),
        format!("\"ops_per_cycle\":{:.4}", stats.ops_per_cycle()),
        format!("\"im_accesses\":{}", stats.im.total_accesses()),
        format!("\"dm_accesses\":{}", stats.dm.total_accesses()),
        format!(
            "\"shard_cycles\":{}",
            json_u64_list(merged.shard_cycles.iter().copied())
        ),
        format!("\"events\":{}", merged.events().len()),
        "\"verified\":true".to_string(),
        format!("\"wall_s\":{:.3}", elapsed.as_secs_f64()),
        format!(
            "\"tenant_latency\":[{}]",
            service_stats
                .per_tenant
                .iter()
                .map(|t| format!(
                    "{{\"tenant\":{},\"jobs\":{},\"p50_us\":{:.1},\"p95_us\":{:.1},\"max_us\":{:.1}}}",
                    t.tenant,
                    t.latency.samples,
                    t.latency.p50.as_secs_f64() * 1e6,
                    t.latency.p95.as_secs_f64() * 1e6,
                    t.latency.max.as_secs_f64() * 1e6
                ))
                .collect::<Vec<_>>()
                .join(",")
        ),
    ];
    if let Some(uj) = energy {
        fields.push(format!("\"energy_uj\":{uj:.3}"));
    }
    if let Some(map) = heatmap {
        fields.push(format!(
            "\"dm_bank_heatmap\":{}",
            json_u64_list(map.totals())
        ));
        fields.push(format!("\"heatmap_rows\":{}", map.rows.len()));
    }
    println!("{{{}}}", fields.join(","));
    ExitCode::SUCCESS
}

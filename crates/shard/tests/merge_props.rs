//! Property tests of the merge machinery on randomized signals: merged
//! delineation events are sorted and duplicate-free, and halo-based
//! stitching reproduces the full-signal golden pass sample for sample —
//! no platform in the loop, so hundreds of cases stay fast.

use proptest::prelude::*;
use ulp_biosignal::{delineate, DelineationConfig};
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_platform::SimStats;
use ulp_service::{JobArtifacts, ObserverSelection};
use ulp_shard::{merge, required_halo, ShardPlan, ShardRunConfig, ShardedRun};

fn zero_stats(num_cores: usize, cycles: u64) -> SimStats {
    SimStats {
        cycles,
        num_cores,
        cores: vec![Default::default(); num_cores],
        core_total: ulp_cpu::CoreStats {
            useful_ops: 1,
            ..Default::default()
        },
        im: Default::default(),
        dm: Default::default(),
        ixbar: Default::default(),
        dxbar: Default::default(),
        sync: None,
        lockstep_width_sum: 0,
        lockstep_width_cycles: 0,
        jit: Default::default(),
    }
}

/// Builds a `ShardedRun` whose per-shard outputs are the *golden*
/// delineator applied to each shard's load window of `signals` — exactly
/// what the platform produces bit for bit, without simulating it.
fn golden_sharded_run(
    signals: &[Vec<i16>],
    plan: ShardPlan,
    dln: &DelineationConfig,
) -> ShardedRun {
    let cores = signals.len();
    let total = plan.total();
    let mut workload = WorkloadConfig::quick_test();
    workload.n = total;
    workload.delineation = *dln;
    let config = ShardRunConfig::new(Benchmark::Mrpdln, false, cores, workload);
    let shards = plan
        .shards()
        .iter()
        .map(|&shard| {
            let outputs: Vec<Vec<u16>> = signals
                .iter()
                .map(|x| {
                    delineate(&x[shard.load_start..shard.load_end], dln)
                        .into_iter()
                        .map(u16::from)
                        .collect()
                })
                .collect();
            ulp_shard::ShardOutput {
                shard,
                run: ulp_kernels::BenchmarkRun {
                    benchmark: Benchmark::Mrpdln,
                    with_sync: false,
                    stats: zero_stats(cores, 100 + shard.index as u64),
                    expected: outputs.clone(),
                    outputs,
                },
                artifacts: JobArtifacts::None,
            }
        })
        .collect();
    ShardedRun {
        config,
        plan,
        shards,
    }
}

fn signal(len: usize) -> impl Strategy<Value = Vec<i16>> {
    prop::collection::vec(-2047i16..=2047, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over random signals, shard geometries and channel counts: the
    /// merged mark stream equals the full-signal pass, and the event list
    /// is strictly sorted by (channel, index) — hence duplicate-free.
    #[test]
    fn merged_events_are_sorted_unique_and_golden(
        total in 60usize..400,
        per_shard in 16usize..280,
        seed_a in signal(400),
        seed_b in signal(400),
        threshold in 50i16..400,
    ) {
        let dln = DelineationConfig { scale_small: 2, scale_large: 5, threshold };
        let mut probe = WorkloadConfig::quick_test();
        probe.delineation = dln;
        let halo = required_halo(Benchmark::Mrpdln, &probe);
        prop_assert_eq!(halo, 6);
        let Ok(plan) = ShardPlan::new(total, per_shard, halo) else {
            // Geometry outside platform limits — nothing to merge.
            return;
        };
        let signals = vec![seed_a[..total].to_vec(), seed_b[..total].to_vec()];
        let run = golden_sharded_run(&signals, plan, &dln);
        let merged = merge(&run).expect("a plan-ordered sharded run merges");

        // Stitched outputs are bit-identical to the one-pass golden.
        for (ch, x) in signals.iter().enumerate() {
            let full: Vec<u16> = delineate(x, &dln).into_iter().map(u16::from).collect();
            prop_assert_eq!(&merged.run.outputs[ch], &full, "channel {}", ch);
        }

        // Events are strictly increasing by (channel, index): sorted and
        // duplicate-free by construction of the halo-dropping merge.
        let events = merged.events();
        for pair in events.windows(2) {
            prop_assert!(
                (pair[0].channel, pair[0].index) < (pair[1].channel, pair[1].index),
                "events out of order or duplicated: {:?}", pair
            );
        }
        // Every event indexes a marked sample of the merged stream.
        for e in &events {
            prop_assert!(e.index < total);
            prop_assert!(merged.run.outputs[e.channel][e.index] != 0);
        }

        // Summed statistics are the shard sums.
        let cycle_sum: u64 = run.shards.iter().map(|s| s.run.stats.cycles).sum();
        prop_assert_eq!(merged.run.stats.cycles, cycle_sum);
        prop_assert_eq!(merged.shard_cycles.len(), run.plan.len());
    }

    /// Over random geometries, windows and counter values: the merged
    /// heat-map rows tile the recording's global cycle axis gaplessly, and
    /// the per-bank totals equal the sum of the per-shard totals exactly —
    /// re-indexing moves rows, it never loses or double-counts an access.
    #[test]
    fn merged_heat_map_totals_are_shard_sums(
        total in 60usize..400,
        per_shard in 16usize..280,
        window in 16u64..200,
        seed in any::<u64>(),
    ) {
        let dln = DelineationConfig { scale_small: 2, scale_large: 5, threshold: 100 };
        let Ok(plan) = ShardPlan::new(total, per_shard, 6) else {
            return;
        };
        let signals = vec![vec![0i16; total]];
        let mut run = golden_sharded_run(&signals, plan, &dln);
        run.config.observers = ObserverSelection::BankHeatMap { window };

        // Deterministic per-case counter values (splitmix-style), so the
        // strategy stays a single u64.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut shard_totals = vec![0u64; 16];
        for out in &mut run.shards {
            let cycles = out.run.stats.cycles;
            let rows: Vec<Vec<u64>> = (0..cycles.div_ceil(window))
                .map(|_| (0..16).map(|_| next() % 100).collect())
                .collect();
            for row in &rows {
                for (t, &v) in shard_totals.iter_mut().zip(row) {
                    *t += v;
                }
            }
            out.artifacts = JobArtifacts::BankHeatMap(rows);
        }

        let merged = merge(&run).expect("a plan-ordered sharded run merges");
        let map = merged.artifacts.bank_heat_map().expect("a heat map was selected");
        prop_assert_eq!(map.window, window);
        prop_assert_eq!(map.totals(), shard_totals);

        // Rows tile [0, total cycles) without gap or overlap.
        let mut cursor = 0u64;
        for row in &map.rows {
            prop_assert_eq!(row.start_cycle, cursor, "gap or overlap at {:?}", row);
            prop_assert!(row.end_cycle >= row.start_cycle);
            cursor = row.end_cycle;
        }
        prop_assert_eq!(cursor, merged.run.stats.cycles);
    }
}

//! The sharding subsystem's correctness anchor: a sharded run of a long
//! synthetic ECG produces the same outputs and delineation events as one
//! oversized golden-model pass, and its aggregate statistics equal the sum
//! of the shard runs — across shard sizes and core counts.

use ulp_kernels::{golden_outputs, Benchmark, WorkloadConfig};
use ulp_shard::{
    golden_events, merge, merge_verified, required_halo, ShardPlan, ShardRunConfig, ShardRunner,
};

/// A recording ≥ 8× the paper's 256-sample window, with the quick-test
/// filter parameters so the debug-build suite stays fast.
fn long_workload(n: usize) -> WorkloadConfig {
    WorkloadConfig {
        n,
        ..WorkloadConfig::quick_test()
    }
}

fn sharded(
    benchmark: Benchmark,
    workload: &WorkloadConfig,
    cores: usize,
    samples_per_shard: usize,
) -> ulp_shard::ShardedRun {
    let plan = ShardPlan::for_workload(benchmark, workload, samples_per_shard).unwrap();
    assert!(plan.len() >= 2, "the recording must actually shard");
    ShardRunner::new(
        ShardRunConfig::new(benchmark, true, cores, workload.clone()),
        plan,
    )
    .unwrap()
    .run_local(0)
    .unwrap()
}

/// The acceptance-criterion matrix: MRPDLN over a 2048-sample recording
/// (8× the paper window), two shard sizes × two core counts, each merged
/// run bit-identical to the full-recording golden pass.
#[test]
fn mrpdln_sharded_equals_golden_across_sizes_and_cores() {
    let workload = long_workload(2048);
    for cores in [2, 4] {
        let golden = golden_outputs(Benchmark::Mrpdln, &workload, cores);
        let golden_evts = golden_events(&workload, cores);
        for samples_per_shard in [192, 288] {
            let run = sharded(Benchmark::Mrpdln, &workload, cores, samples_per_shard);
            let merged = merge_verified(&run).unwrap_or_else(|e| {
                panic!("{samples_per_shard}-sample shards on {cores} cores: {e}")
            });
            // Bit-identical stitched outputs...
            assert_eq!(merged.run.outputs, golden);
            // ...identical delineation events (and on a signal this long
            // there must be plenty)...
            let events = merged.events();
            assert_eq!(events, golden_evts, "{samples_per_shard}/{cores}");
            assert!(
                events.len() >= 2 * cores,
                "only {} events over 2048 samples × {cores} channels",
                events.len()
            );
            // ...and aggregate counters equal to the sum of the shards.
            assert_eq!(
                merged.run.stats.cycles,
                merged.shard_cycles.iter().sum::<u64>()
            );
            let (mut cycles, mut ops, mut im, mut dm) = (0, 0, 0, 0);
            for out in &run.shards {
                cycles += out.run.stats.cycles;
                ops += out.run.stats.useful_ops();
                im += out.run.stats.im.total_accesses();
                dm += out.run.stats.dm.total_accesses();
            }
            assert_eq!(merged.run.stats.cycles, cycles);
            assert_eq!(merged.run.stats.useful_ops(), ops);
            assert_eq!(merged.run.stats.im.total_accesses(), im);
            assert_eq!(merged.run.stats.dm.total_accesses(), dm);
            // The op-weighted fold of per-shard activity equals the
            // activity of the summed statistics (up to fp rounding).
            let folded = merged.activity();
            let summed = ulp_power::Activity::from_stats(&merged.run.stats);
            assert!((folded.ops_per_cycle - summed.ops_per_cycle).abs() < 1e-9);
            assert!((folded.im_accesses - summed.im_accesses).abs() < 1e-9);
            assert!((folded.dm_accesses - summed.dm_accesses).abs() < 1e-9);
            assert!((folded.core_active - summed.core_active).abs() < 1e-9);
        }
    }
}

/// MRPFLTR has the widest dependency radius of the three benchmarks; its
/// merged output must still match the full pass sample for sample.
#[test]
fn mrpfltr_sharded_equals_golden() {
    let workload = long_workload(900);
    let run = sharded(Benchmark::Mrpfltr, &workload, 2, 250);
    let merged = merge_verified(&run).unwrap();
    assert_eq!(
        merged.run.outputs,
        golden_outputs(Benchmark::Mrpfltr, &workload, 2)
    );
    assert!(merged.events().is_empty(), "events are MRPDLN-only");
}

/// SQRT32 is point-wise (zero halo): shards merge exactly even with no
/// overlap at all.
#[test]
fn sqrt32_sharded_equals_golden_with_zero_halo() {
    let workload = long_workload(1100);
    let run = sharded(Benchmark::Sqrt32, &workload, 4, 275);
    assert_eq!(run.plan.halo(), 0);
    let merged = merge_verified(&run).unwrap();
    assert_eq!(
        merged.run.outputs,
        golden_outputs(Benchmark::Sqrt32, &workload, 4)
    );
}

/// An *insufficient* halo must be caught by verification — this guards
/// that `required_halo` is not vacuously generous and that `verify` can
/// actually fail.
#[test]
fn undersized_halo_is_detected_by_verification() {
    let workload = long_workload(600);
    // MRPFLTR needs (7-1)+(11-1)+(3-1) = 18 halo samples on the quick
    // config; give it 2.
    assert_eq!(required_halo(Benchmark::Mrpfltr, &workload), 18);
    let plan = ShardPlan::new(600, 150, 2).unwrap();
    let run = ShardRunner::new(
        ShardRunConfig::new(Benchmark::Mrpfltr, true, 2, workload.clone()),
        plan,
    )
    .unwrap()
    .run_local(0)
    .unwrap();
    let merged = merge(&run).expect("the merge itself succeeds; only verification fails");
    assert!(
        merged.run.verify().is_err(),
        "a 2-sample halo cannot re-establish an 18-sample filter state"
    );
}

/// The artifact-merge acceptance criterion: on a buffer-fitting recording,
/// the sharded run's merged per-bank heat map equals the unsharded
/// full-pass heat map — across 2 shard sizes × 2 core counts — up to the
/// analytic warm-up delta. Each shard re-runs the kernel prologue, which
/// performs exactly one DM store per core per run (the loop-index init
/// into the core's own bank), so a `k`-shard run's totals carry `k - 1`
/// extra accesses in bank `c` for each core `c`; every other count is
/// bit-identical.
#[test]
fn sqrt32_sharded_heat_map_equals_full_pass_up_to_prologue_warmup() {
    use std::sync::Arc;
    use ulp_service::{JobSpec, ObserverSelection, ServiceConfig, SimService};

    // 296 samples fit one platform buffer (≤ MAX_N), so an unsharded
    // full pass exists to compare against; SQRT32 is point-wise, so the
    // zero-halo shards add no recomputed samples.
    let workload = long_workload(296);
    let window = 4096u64;
    for cores in [2usize, 4] {
        let mut service = SimService::start(ServiceConfig::builder().workers(1).build());
        service
            .submit(
                JobSpec::new(Benchmark::Sqrt32, cores, Arc::new(workload.clone()))
                    .observers(ObserverSelection::BankHeatMap { window }),
            )
            .expect("unbounded queue admits");
        let out = service
            .recv()
            .expect("the full pass completes")
            .outcome
            .expect("the full pass runs");
        service.finish();
        let full_rows = out.artifacts.bank_heat_map().expect("a heat map");
        let mut full = vec![0u64; full_rows.first().map_or(0, Vec::len)];
        for row in full_rows {
            for (t, &v) in full.iter_mut().zip(row) {
                *t += v;
            }
        }

        for samples_per_shard in [74usize, 148] {
            let plan =
                ShardPlan::for_workload(Benchmark::Sqrt32, &workload, samples_per_shard).unwrap();
            let shards = plan.len();
            assert!(shards >= 2, "the recording must actually shard");
            let run = ShardRunner::new(
                ShardRunConfig::new(Benchmark::Sqrt32, true, cores, workload.clone())
                    .with_observers(ObserverSelection::BankHeatMap { window }),
                plan,
            )
            .unwrap()
            .run_local(0)
            .unwrap();
            let merged = merge_verified(&run).unwrap();
            let map = merged
                .artifacts
                .bank_heat_map()
                .expect("the merge carries the selected heat map");

            // Core `c`'s own bank is bank `c`: the warm-up store lands there.
            let mut expected = full.clone();
            for slot in expected.iter_mut().take(cores) {
                *slot += (shards - 1) as u64;
            }
            assert_eq!(
                map.totals(),
                expected,
                "{samples_per_shard}-sample shards on {cores} cores"
            );

            // The merged rows tile the recording's cycle axis gaplessly.
            let mut cursor = 0u64;
            for row in &map.rows {
                assert_eq!(row.start_cycle, cursor);
                cursor = row.end_cycle;
            }
            assert_eq!(cursor, merged.run.stats.cycles);
        }
    }
}

/// Shard length not dividing the recording: the balanced split produces
/// mixed core lengths and the merge still reconstructs the recording
/// exactly.
#[test]
fn non_dividing_shard_length_merges_exactly() {
    // 1000 samples at ≤ 144 → 7 shards of 143/143/143/143/143/143/142.
    let workload = long_workload(1000);
    let run = sharded(Benchmark::Mrpdln, &workload, 2, 144);
    let lens: Vec<usize> = run.plan.shards().iter().map(|s| s.core_len()).collect();
    assert!(lens.windows(2).all(|w| w[0] >= w[1] && w[0] - w[1] <= 1));
    assert_eq!(lens.iter().sum::<usize>(), 1000);
    let merged = merge_verified(&run).unwrap();
    assert_eq!(merged.run.outputs[0].len(), 1000);
}

/// Halo longer than the shard's own core region: load windows of
/// neighbouring shards overlap heavily, and dropping the duplicates still
/// yields the exact recording.
#[test]
fn halo_longer_than_shard_merges_exactly() {
    let workload = long_workload(400);
    // 50-sample cores with a 100-sample halo (> 2 shards of overlap).
    let plan = ShardPlan::new(400, 50, 100).unwrap();
    assert!(plan.halo() > plan.shards()[0].core_len());
    let run = ShardRunner::new(
        ShardRunConfig::new(Benchmark::Mrpdln, true, 2, workload.clone()),
        plan,
    )
    .unwrap()
    .run_local(0)
    .unwrap();
    let merged = merge_verified(&run).unwrap();
    assert_eq!(
        merged.run.outputs,
        golden_outputs(Benchmark::Mrpdln, &workload, 2)
    );
}

/// The degenerate single-shard plan: sharding a recording that fits one
/// platform is the identity.
#[test]
fn single_shard_plan_is_identity() {
    let workload = long_workload(250);
    let plan = ShardPlan::for_workload(Benchmark::Mrpdln, &workload, 256).unwrap();
    assert_eq!(plan.len(), 1);
    let run = ShardRunner::new(
        ShardRunConfig::new(Benchmark::Mrpdln, true, 2, workload.clone()),
        plan,
    )
    .unwrap()
    .run_local(1)
    .unwrap();
    let merged = merge_verified(&run).unwrap();
    assert_eq!(merged.run.stats.cycles, merged.shard_cycles[0]);
    assert_eq!(merged.run.outputs[0].len(), 250);
}

/// A plan bound to the wrong recording length is rejected up front.
#[test]
fn plan_workload_mismatch_is_rejected() {
    let workload = long_workload(500);
    let plan = ShardPlan::new(400, 100, 10).unwrap();
    let err = ShardRunner::new(
        ShardRunConfig::new(Benchmark::Sqrt32, true, 2, workload),
        plan,
    )
    .unwrap_err();
    assert!(err.to_string().contains("plan covers 400"));
}

//! Property-based tests of the ISA layer: binary encode/decode and
//! assembler/disassembler round trips over the whole instruction space.

use proptest::prelude::*;
use ulp_lockstep::isa::{
    asm::assemble, decode, disasm::disassemble, encode, AluOp, Cond, CsrOp, Instr, Reg, ShiftKind,
    UnaryOp,
};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|i| Reg::try_from(i).expect("in range"))
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Sleep),
        Just(Instr::Halt),
        (prop::sample::select(&AluOp::ALL[..]), reg(), reg()).prop_map(|(op, rd, rs)| Instr::Alu {
            op,
            rd,
            rs
        }),
        (reg(), -16i8..=15).prop_map(|(rd, imm)| Instr::AddI { rd, imm }),
        (reg(), -16i8..=15).prop_map(|(rd, imm)| Instr::CmpI { rd, imm }),
        (reg(), any::<u8>()).prop_map(|(rd, imm)| Instr::MovI { rd, imm }),
        (reg(), any::<u8>()).prop_map(|(rd, imm)| Instr::MovHi { rd, imm }),
        (prop::sample::select(&ShiftKind::ALL[..]), reg(), 0u8..=15)
            .prop_map(|(kind, rd, amount)| Instr::Shift { kind, rd, amount }),
        (prop::sample::select(&UnaryOp::ALL[..]), reg())
            .prop_map(|(op, rd)| Instr::Unary { op, rd }),
        (reg(), reg(), -16i8..=15).prop_map(|(rd, base, offset)| Instr::Ld { rd, base, offset }),
        (reg(), reg(), -16i8..=15).prop_map(|(rs, base, offset)| Instr::St { rs, base, offset }),
        (reg(), reg()).prop_map(|(rd, base)| Instr::LdP { rd, base }),
        (reg(), reg()).prop_map(|(rs, base)| Instr::StP { rs, base }),
        (prop::sample::select(&Cond::ALL[..]), -128i16..=127)
            .prop_map(|(cond, offset)| Instr::Branch { cond, offset }),
        (-1024i16..=1023).prop_map(|offset| Instr::Jal { offset }),
        reg().prop_map(|rs| Instr::Jr { rs }),
        reg().prop_map(|rs| Instr::Jalr { rs }),
        any::<u8>().prop_map(|index| Instr::Sinc { index }),
        any::<u8>().prop_map(|index| Instr::Sdec { index }),
        (prop::sample::select(&CsrOp::ALL[..]), reg()).prop_map(|(op, rd)| Instr::Csr {
            op,
            // rd is a don't-care for EI/DI/IRET; canonical form uses r0.
            rd: if op.uses_rd() { rd } else { Reg::R0 },
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Binary round trip: encode then decode reproduces the instruction.
    #[test]
    fn encode_decode_round_trip(i in instr()) {
        let word = encode(i).expect("strategy only builds encodable instructions");
        prop_assert_eq!(decode(word).expect("just encoded"), i);
    }

    /// Text round trip: disassemble then reassemble reproduces the word.
    #[test]
    fn disasm_asm_round_trip(i in instr()) {
        let word = encode(i).expect("encodable");
        let text = disassemble(i);
        let program = assemble(&text)
            .unwrap_or_else(|e| panic!("disassembly must reassemble: {text:?}: {e}"));
        prop_assert_eq!(program.to_vec(0, 1)[0], word, "text {}", text);
    }

    /// Arbitrary words never panic the decoder, and valid ones re-encode
    /// to themselves (strictness property).
    #[test]
    fn decode_is_strict(word in any::<u16>()) {
        if let Ok(i) = decode(word) {
            prop_assert_eq!(encode(i).expect("decoded must encode"), word);
        }
    }

    /// The assembler and `.word` agree: assembling `.word w` places the
    /// raw value verbatim.
    #[test]
    fn word_directive_is_verbatim(w in any::<u16>()) {
        let program = assemble(&format!(".word {w}")).expect("valid directive");
        prop_assert_eq!(program.to_vec(0, 1)[0], w);
    }
}

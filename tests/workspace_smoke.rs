//! Workspace smoke test: end-to-end exercise of the paper's core claim.
//!
//! Assembles a tiny two-core program whose cores drift apart in a
//! data-dependent section (per-core trip counts), check in with `SINC` and
//! check out with `SDEC`, and asserts that on the design with the hardware
//! synchronizer the cores resume in lockstep — same fetch PC on the same
//! cycle — while the baseline design never realigns.

use ulp_lockstep::isa::asm::assemble;
use ulp_lockstep::platform::{PcTrace, Platform, PlatformConfig};

/// Core `id` spins `id + 1` times between check-in and check-out, so the
/// two cores leave the section at different times.
const PROGRAM: &str = "
        rdid r1
        li   r3, 18432
        wrsync r3
        sinc #0            ; check-in (point A of Fig. 2)
        mov  r5, r1
        inc  r5
spin:   addi r5, #-1       ; data-dependent section: id + 1 iterations
        bne  spin
        sdec #0            ; check-out: resynchronize
        movi r0, #4
post:   add  r2, r2        ; lockstep region after the barrier
        add  r2, r2
        addi r0, #-1
        bne  post
        halt";

fn run(with_sync: bool) -> (Platform, PcTrace) {
    let program = assemble(PROGRAM).expect("program assembles");
    let config = PlatformConfig::paper(with_sync)
        .with_cores(2)
        .with_max_cycles(100_000);
    let mut platform = Platform::new(config).expect("valid config");
    platform.load_program(&program);
    let mut trace = PcTrace::new(512);
    platform.run_with(&mut [&mut trace]).expect("program halts");
    (platform, trace)
}

/// Rows of the fetch trace classified per cycle: `Together(pc)` means both
/// cores fetched the same address that cycle.
#[derive(Debug, PartialEq)]
enum Row {
    Idle,
    Single,
    Together(u16),
    Split(u16, u16),
}

fn classify(trace: &PcTrace) -> Vec<Row> {
    trace
        .rows()
        .iter()
        .map(|row| match (row[0], row[1]) {
            (None, None) => Row::Idle,
            (Some(a), Some(b)) if a == b => Row::Together(a),
            (Some(a), Some(b)) => Row::Split(a, b),
            _ => Row::Single,
        })
        .collect()
}

#[test]
fn two_core_sinc_sdec_resumes_in_lockstep() {
    let (platform, trace) = run(true);
    for i in 0..2 {
        assert!(platform.core(i).is_halted(), "core {i} halted");
    }

    let stats = platform.stats();
    let sync = stats.sync.expect("synchronizer present");
    assert_eq!(sync.checkin_requests, 2, "both cores checked in");
    assert_eq!(sync.checkout_requests, 2, "both cores checked out");
    assert_eq!(sync.releases, 1, "barrier released exactly once");
    assert_eq!(sync.wakeups, 1, "the early core slept and was woken");
    assert_eq!(sync.underflows, 0);
    assert_eq!(platform.dm(18432), 0, "sync word cleared after release");

    // The divergent section must actually desynchronize the cores...
    let rows = classify(&trace);
    let last_apart = rows
        .iter()
        .rposition(|r| matches!(r, Row::Single | Row::Split(..)))
        .expect("the data-dependent section desynchronizes the cores");
    // ...and after the barrier the cores fetch together again, at the same
    // address on the same cycle, all the way to the halt.
    let tail: Vec<&Row> = rows[last_apart + 1..]
        .iter()
        .filter(|r| !matches!(r, Row::Idle))
        .collect();
    assert!(
        tail.len() >= 4,
        "expected a lockstep region after the barrier, got {tail:?}"
    );
    assert!(
        tail.iter().all(|r| matches!(r, Row::Together(_))),
        "post-barrier fetches not in lockstep: {tail:?}"
    );
}

#[test]
fn baseline_without_synchronizer_never_realigns() {
    let (platform, trace) = run(false);
    for i in 0..2 {
        assert!(platform.core(i).is_halted(), "core {i} halted");
    }
    assert!(platform.stats().sync.is_none(), "no synchronizer modeled");

    // Once the data-dependent section splits the cores, the baseline has
    // no mechanism to bring them back: no fetch after the split may be a
    // same-address broadcast.
    let rows = classify(&trace);
    let first_apart = rows
        .iter()
        .position(|r| matches!(r, Row::Single | Row::Split(..)))
        .expect("cores drift apart");
    assert!(
        !rows[first_apart..]
            .iter()
            .any(|r| matches!(r, Row::Together(_))),
        "baseline unexpectedly realigned"
    );
}

#[test]
fn synchronizer_improves_lockstep_width() {
    let with_sync = run(true).0.stats().avg_lockstep_width();
    let without = run(false).0.stats().avg_lockstep_width();
    assert!(
        with_sync > without,
        "synchronizer must improve average lockstep width \
         (with: {with_sync:.3}, without: {without:.3})"
    );
}

//! Differential testing of the compiled execution tier: for arbitrary
//! programs and for the paper's three kernels, a platform running with
//! [`ExecTier::Compiled`] must produce *bit-identical* architectural
//! state and statistics to the interpreter — registers, flags, PCs, the
//! whole data memory, cycle counts, and every SimStats counter except the
//! `jit` field itself (which describes the host execution strategy, not
//! the simulated machine).

use proptest::prelude::*;
use ulp_lockstep::isa::{encode, AluOp, Cond, CsrOp, Instr, Reg, ShiftKind, UnaryOp};
use ulp_lockstep::kernels::{run_benchmark_on, Benchmark, WorkloadConfig};
use ulp_lockstep::platform::{ExecTier, Platform, PlatformConfig, SimStats};

/// Strategy: one instruction of an SPMD body. Only forward skips (offset
/// 0 or 1) so every program terminates; loads and stores go through `r2`,
/// which the prologue points at the core's private DM bank.
fn body_instr() -> impl Strategy<Value = Instr> {
    let reg = || prop::sample::select(&[Reg::R0, Reg::R1, Reg::R3, Reg::R4, Reg::R5][..]);
    prop_oneof![
        (prop::sample::select(&AluOp::ALL[..]), reg(), reg()).prop_map(|(op, rd, rs)| Instr::Alu {
            op,
            rd,
            rs
        }),
        (reg(), -16i8..=15).prop_map(|(rd, imm)| Instr::AddI { rd, imm }),
        (reg(), any::<u8>()).prop_map(|(rd, imm)| Instr::MovI { rd, imm }),
        (reg(), any::<u8>()).prop_map(|(rd, imm)| Instr::MovHi { rd, imm }),
        (prop::sample::select(&ShiftKind::ALL[..]), reg(), 0u8..=15)
            .prop_map(|(kind, rd, amount)| Instr::Shift { kind, rd, amount }),
        (prop::sample::select(&UnaryOp::ALL[..]), reg())
            .prop_map(|(op, rd)| Instr::Unary { op, rd }),
        (reg(), 0i8..=15).prop_map(|(rd, offset)| Instr::Ld {
            rd,
            base: Reg::R2,
            offset
        }),
        (reg(), 0i8..=15).prop_map(|(rs, offset)| Instr::St {
            rs,
            base: Reg::R2,
            offset
        }),
        // Forward-only conditional skips give the cores data-dependent
        // divergence — the exact situation where compiled traces must
        // keep falling back without drifting from the interpreter.
        (prop::sample::select(&Cond::ALL[..]), 0i16..=1)
            .prop_map(|(cond, offset)| Instr::Branch { cond, offset }),
        Just(Instr::Nop),
    ]
}

/// Prologue `r2 = id << 11` (private bank base), then the body, then HALT.
/// The trailing NOP guarantees a skip over HALT still lands on code.
fn build_program(body: &[Instr]) -> Vec<u16> {
    let mut words = Vec::with_capacity(body.len() + 5);
    for i in [
        Instr::Csr {
            op: CsrOp::RdId,
            rd: Reg::R2,
        },
        Instr::Shift {
            kind: ShiftKind::Shl,
            rd: Reg::R2,
            amount: 11,
        },
    ] {
        words.push(encode(i).expect("prologue encodes"));
    }
    for i in body {
        words.push(encode(*i).expect("body encodes"));
    }
    words.push(encode(Instr::Halt).expect("halt encodes"));
    words.push(encode(Instr::Nop).expect("nop encodes"));
    words.push(encode(Instr::Halt).expect("halt encodes"));
    words
}

/// Full machine state after a run, captured for bit-exact comparison.
#[derive(Debug, PartialEq)]
struct MachineState {
    cycles: u64,
    stats: SimStats,
    regs: Vec<Vec<u16>>,
    pcs: Vec<u16>,
    flags: Vec<ulp_lockstep::isa::Flags>,
    dm: Vec<u16>,
}

fn run_tier(words: &[u16], tier: ExecTier, cores: usize, with_sync: bool) -> MachineState {
    let mut cfg = PlatformConfig::paper(with_sync)
        .with_cores(cores)
        .with_max_cycles(2_000_000)
        .with_exec_tier(tier);
    // Translate on first sight so even short random programs exercise
    // the compiled path.
    cfg.jit_hot_threshold = 1;
    let mut p = Platform::new(cfg).expect("valid config");
    p.load_im(0, words);
    p.run().expect("terminates");
    let mut stats = p.stats();
    // The jit counters are the one field allowed to differ between tiers.
    stats.jit = Default::default();
    MachineState {
        cycles: p.cycle(),
        regs: (0..cores)
            .map(|i| Reg::ALL.iter().map(|&r| p.core(i).reg(r)).collect())
            .collect(),
        pcs: (0..cores).map(|i| p.core(i).pc()).collect(),
        flags: (0..cores).map(|i| p.core(i).flags()).collect(),
        dm: p.dm_slice(0, p.config().dm_words),
        stats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary SPMD programs (private-bank memory traffic, forward
    /// skips) are bit-identical across tiers at 2, 4 and 8 cores, on both
    /// designs.
    #[test]
    fn compiled_tier_is_bit_identical(body in prop::collection::vec(body_instr(), 1..60)) {
        let words = build_program(&body);
        for cores in [2usize, 4, 8] {
            for with_sync in [true, false] {
                let interpreted = run_tier(&words, ExecTier::Interpreted, cores, with_sync);
                let compiled = run_tier(&words, ExecTier::Compiled, cores, with_sync);
                prop_assert_eq!(&interpreted, &compiled, "cores {} sync {}", cores, with_sync);
            }
        }
    }
}

/// A lockstep spin loop must actually execute in the compiled tier (not
/// just match it through fallback): the trace cache reports translations,
/// hits and a non-zero compiled-cycle count.
#[test]
fn lockstep_program_executes_compiled_cycles() {
    let src = "
        rdid r2
        movi r0, #13
    loop: addi r0, #-1
        bne loop
        halt
    ";
    let program = ulp_lockstep::isa::asm::assemble(src).expect("valid asm");
    let mut cfg = PlatformConfig::paper_with_sync().with_exec_tier(ExecTier::Compiled);
    cfg.jit_hot_threshold = 2;
    let mut p = Platform::new(cfg).expect("valid config");
    p.load_program(&program);
    p.run().expect("terminates");
    let jit = p.stats().jit;
    assert!(jit.translations > 0, "hot block was translated: {jit:?}");
    assert!(jit.hits > 0, "hot block was reused: {jit:?}");
    assert!(jit.compiled_cycles > 0, "cycles ran compiled: {jit:?}");
    assert!(jit.fallback_cycles > 0, "boundaries fell back: {jit:?}");
}

/// The translation cache survives `Platform::reset` — a second run of the
/// same program starts hot (more hits, no new translations).
#[test]
fn translation_cache_survives_reset() {
    let src = "
        movi r0, #9
    loop: addi r0, #-1
        bne loop
        halt
    ";
    let program = ulp_lockstep::isa::asm::assemble(src).expect("valid asm");
    let mut cfg = PlatformConfig::paper_with_sync().with_exec_tier(ExecTier::Compiled);
    cfg.jit_hot_threshold = 2;
    let mut p = Platform::new(cfg).expect("valid config");
    p.load_program(&program);
    p.run().expect("terminates");
    let first = p.stats().jit;
    assert!(first.translations > 0);

    // Hotness counters persist too, so straight-line code outside the
    // loop may still cross the threshold on the second run; by the third
    // run everything hot has a surviving trace and nothing re-translates.
    for run in [2, 3] {
        p.reset();
        p.load_program(&program);
        p.run().expect("terminates");
        let again = p.stats().jit;
        if run == 3 {
            assert_eq!(
                again.translations, 0,
                "a re-run of the same program reuses the surviving cache: {again:?}"
            );
        }
        assert!(again.compiled_cycles > 0, "run {run}: {again:?}");
    }
}

/// The paper's three kernels, golden-checked compiled-vs-interpreted at
/// 2, 4 and 8 cores: identical outputs (matching the golden model) and
/// identical statistics modulo the jit field.
#[test]
fn paper_kernels_bit_identical_across_tiers() {
    let workload = WorkloadConfig::quick_test();
    let mut compiled_cycles_total = 0u64;
    for benchmark in Benchmark::ALL {
        for cores in [2usize, 4, 8] {
            let cfg = |tier| {
                PlatformConfig::paper(true)
                    .with_cores(cores)
                    .with_max_cycles(workload.max_cycles)
                    .with_exec_tier(tier)
            };
            let interpreted = run_benchmark_on(benchmark, cfg(ExecTier::Interpreted), &workload)
                .expect("interpreted run");
            let compiled = run_benchmark_on(benchmark, cfg(ExecTier::Compiled), &workload)
                .expect("compiled run");
            interpreted.verify().expect("interpreted matches golden");
            compiled.verify().expect("compiled matches golden");
            assert_eq!(
                interpreted.outputs, compiled.outputs,
                "{benchmark:?} at {cores} cores: outputs diverge"
            );
            let mut a = interpreted.stats.clone();
            let mut b = compiled.stats.clone();
            compiled_cycles_total += b.jit.compiled_cycles;
            a.jit = Default::default();
            b.jit = Default::default();
            assert_eq!(a, b, "{benchmark:?} at {cores} cores: stats diverge");
        }
    }
    assert!(
        compiled_cycles_total > 0,
        "at least some kernel cycles ran through the compiled tier"
    );
}

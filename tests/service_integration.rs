//! End-to-end smoke of the batch simulation service through the
//! `ulp_lockstep` facade: submit a small mixed grid, stream results back,
//! and check the scheduling counters.

use std::sync::Arc;
use ulp_lockstep::kernels::{Benchmark, WorkloadConfig};
use ulp_lockstep::service::{JobSpec, Priority, ServiceConfig, SimService};

#[test]
fn facade_service_streams_a_mixed_grid() {
    let workload = Arc::new(WorkloadConfig::quick_test());
    let mut service = SimService::start(ServiceConfig::with_workers(2));
    for &(with_sync, cores) in &[(true, 2), (false, 2), (true, 8), (true, 2)] {
        service.submit(JobSpec::new(
            Benchmark::Sqrt32,
            with_sync,
            cores,
            workload.clone(),
        ));
    }

    let mut completed = 0;
    while let Some(result) = service.recv() {
        let out = result.outcome.expect("job ran");
        out.run.verify().expect("outputs match golden model");
        completed += 1;
        // Results stream incrementally: the live counters already reflect
        // at least the jobs this client has seen finish.
        assert!(service.stats().jobs_run >= completed);
    }
    assert_eq!(completed, 4);

    let stats = service.finish();
    assert_eq!(stats.jobs_run, 4);
    assert_eq!(stats.workers, 2);
    // Which worker ran which job is scheduling-dependent, but every job
    // either built a platform or reused a cached one. (Deterministic
    // cache-hit coverage lives in the single-worker service tests.)
    assert_eq!(stats.platform_cache_hits + stats.platforms_built, 4);
    // Every completed job feeds the latency distribution.
    assert_eq!(stats.latency.samples, 4);
    assert!(stats.latency.p50 <= stats.latency.p95);
    assert!(stats.latency.p95 <= stats.latency.max);
}

/// The hardened submission path through the facade: a bounded queue fed
/// by both submission flavours, with priorities and a deadline — results
/// stay bit-identical scheduling-metadata aside, and the backpressure
/// counters surface in the final stats.
#[test]
fn facade_bounded_queue_backpressure_round_trip() {
    let workload = Arc::new(WorkloadConfig::quick_test());
    let mut service = SimService::start(ServiceConfig::with_workers(2).with_queue_capacity(2));
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for i in 0..16 {
        let spec = JobSpec::new(Benchmark::Sqrt32, i % 2 == 0, 2, workload.clone())
            .with_priority(if i % 4 == 0 {
                Priority::High
            } else {
                Priority::Low
            })
            .with_deadline_cycles(u64::MAX);
        if i % 2 == 0 {
            // The blocking path throttles instead of rejecting.
            service.submit(spec);
            accepted += 1;
        } else {
            match service.try_submit(spec) {
                Ok(_) => accepted += 1,
                Err(rejection) => {
                    assert_eq!(rejection.capacity, 2);
                    rejected += 1;
                }
            }
        }
    }
    let mut completed = 0u64;
    while let Some(result) = service.recv() {
        let out = result.outcome.expect("job ran");
        out.run.verify().expect("outputs match golden model");
        assert!(!result.deadline_missed, "u64::MAX budget is never missed");
        completed += 1;
    }
    assert_eq!(completed, accepted);
    let stats = service.finish();
    assert_eq!(stats.jobs_run, accepted);
    assert_eq!(stats.rejections, rejected);
    assert_eq!(stats.deadline_misses, 0);
    assert_eq!(stats.latency.samples, accepted);
}

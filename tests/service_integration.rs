//! End-to-end smoke of the batch simulation service through the
//! `ulp_lockstep` facade: submit a small mixed grid, stream results back,
//! and check the scheduling counters.

use std::sync::Arc;
use ulp_lockstep::kernels::{Benchmark, WorkloadConfig};
use ulp_lockstep::service::{JobSpec, ServiceConfig, SimService};

#[test]
fn facade_service_streams_a_mixed_grid() {
    let workload = Arc::new(WorkloadConfig::quick_test());
    let mut service = SimService::start(ServiceConfig::with_workers(2));
    for &(with_sync, cores) in &[(true, 2), (false, 2), (true, 8), (true, 2)] {
        service.submit(JobSpec::new(
            Benchmark::Sqrt32,
            with_sync,
            cores,
            workload.clone(),
        ));
    }

    let mut completed = 0;
    while let Some(result) = service.recv() {
        let out = result.outcome.expect("job ran");
        out.run.verify().expect("outputs match golden model");
        completed += 1;
        // Results stream incrementally: the live counters already reflect
        // at least the jobs this client has seen finish.
        assert!(service.stats().jobs_run >= completed);
    }
    assert_eq!(completed, 4);

    let stats = service.finish();
    assert_eq!(stats.jobs_run, 4);
    assert_eq!(stats.workers, 2);
    // Which worker ran which job is scheduling-dependent, but every job
    // either built a platform or reused a cached one. (Deterministic
    // cache-hit coverage lives in the single-worker service tests.)
    assert_eq!(stats.platform_cache_hits + stats.platforms_built, 4);
}

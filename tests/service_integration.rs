//! End-to-end smoke of the batch simulation service through the
//! `ulp_lockstep` facade: submit a small mixed grid, stream results back,
//! and check the scheduling counters.

use std::sync::Arc;
use ulp_lockstep::kernels::{Benchmark, WorkloadConfig};
use ulp_lockstep::service::{
    JobSpec, Priority, ServiceConfig, SimService, SubmitError, TenantId, TenantPolicy,
};

#[test]
fn facade_service_streams_a_mixed_grid() {
    let workload = Arc::new(WorkloadConfig::quick_test());
    let mut service = SimService::start(ServiceConfig::builder().workers(2).build());
    for &(with_sync, cores) in &[(true, 2), (false, 2), (true, 8), (true, 2)] {
        service
            .submit(JobSpec::new(Benchmark::Sqrt32, cores, workload.clone()).with_sync(with_sync))
            .expect("unbounded queue admits");
    }

    let mut completed = 0;
    while let Some(result) = service.recv() {
        let out = result.outcome.expect("job ran");
        out.run.verify().expect("outputs match golden model");
        completed += 1;
        // Results stream incrementally: the live counters already reflect
        // at least the jobs this client has seen finish.
        assert!(service.stats().jobs_run >= completed);
    }
    assert_eq!(completed, 4);

    let stats = service.finish();
    assert_eq!(stats.jobs_run, 4);
    assert_eq!(stats.workers, 2);
    // Which worker ran which job is scheduling-dependent, but every job
    // either built a platform or reused a cached one. (Deterministic
    // cache-hit coverage lives in the single-worker service tests.)
    assert_eq!(stats.platform_cache_hits + stats.platforms_built, 4);
    // Every completed job feeds the latency distribution.
    assert_eq!(stats.latency.samples, 4);
    assert!(stats.latency.p50 <= stats.latency.p95);
    assert!(stats.latency.p95 <= stats.latency.max);
}

/// The hardened submission path through the facade: a bounded queue fed
/// by both submission flavours, with priorities and a deadline — results
/// stay bit-identical scheduling-metadata aside, and the backpressure
/// counters surface in the final stats.
#[test]
fn facade_bounded_queue_backpressure_round_trip() {
    let workload = Arc::new(WorkloadConfig::quick_test());
    let mut service = SimService::start(
        ServiceConfig::builder()
            .workers(2)
            .queue_capacity(2)
            .build(),
    );
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for i in 0..16 {
        let spec = JobSpec::new(Benchmark::Sqrt32, 2, workload.clone())
            .with_sync(i % 2 == 0)
            .priority(if i % 4 == 0 {
                Priority::High
            } else {
                Priority::Low
            })
            .deadline_cycles(u64::MAX);
        if i % 2 == 0 {
            // The blocking path throttles instead of rejecting.
            service.submit_blocking(spec).expect("pool alive");
            accepted += 1;
        } else {
            match service.submit(spec) {
                Ok(_) => accepted += 1,
                Err(SubmitError::AtCapacity { capacity, .. }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
    }
    let mut completed = 0u64;
    while let Some(result) = service.recv() {
        let out = result.outcome.expect("job ran");
        out.run.verify().expect("outputs match golden model");
        assert!(!result.deadline_missed, "u64::MAX budget is never missed");
        completed += 1;
    }
    assert_eq!(completed, accepted);
    let stats = service.finish();
    assert_eq!(stats.jobs_run, accepted);
    assert_eq!(stats.rejections, rejected);
    assert_eq!(stats.deadline_misses, 0);
    assert_eq!(stats.latency.samples, accepted);
}

/// Tenant identity through the facade: quotas reject over-admission with
/// the spec handed back, and the final stats carry per-tenant latency
/// rows next to the pooled aggregate.
#[test]
fn facade_tenant_quotas_and_per_tenant_stats_round_trip() {
    let workload = Arc::new(WorkloadConfig::quick_test());
    let limited = TenantId(1);
    let open = TenantId(2);
    let mut service = SimService::start(
        ServiceConfig::builder()
            .workers(1)
            .tenant(limited, TenantPolicy::quota(2))
            .build(),
    );
    // Hold the single worker down so the quota window stays occupied.
    let spec = |tenant| JobSpec::new(Benchmark::Sqrt32, 8, workload.clone()).tenant(tenant);
    let mut accepted = 0u64;
    let mut over_quota = 0u64;
    for _ in 0..4 {
        match service.submit(spec(limited)) {
            Ok(_) => accepted += 1,
            Err(SubmitError::QuotaExceeded { tenant, spec, .. }) => {
                assert_eq!(tenant, limited);
                // The spec comes back intact for a later retry.
                assert_eq!(spec.tenant, limited);
                over_quota += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    // The unlimited tenant is unaffected by its neighbour's quota.
    for _ in 0..3 {
        service.submit(spec(open)).expect("no quota for tenant 2");
        accepted += 1;
    }
    let mut completed = 0u64;
    while let Some(result) = service.recv() {
        result.outcome.expect("job ran");
        completed += 1;
    }
    assert_eq!(completed, accepted);
    assert!(over_quota >= 1, "the quota must actually bind");

    let stats = service.finish();
    assert_eq!(stats.quota_rejections, over_quota);
    let limited_stats = stats.tenant(limited).expect("tenant 1 ran jobs");
    assert!(limited_stats.peak_admitted <= 2, "quota never breached");
    let open_stats = stats.tenant(open).expect("tenant 2 ran jobs");
    assert_eq!(open_stats.latency.samples, 3);
    assert_eq!(
        limited_stats.latency.samples + open_stats.latency.samples,
        stats.latency.samples,
        "per-tenant rows partition the aggregate"
    );
}

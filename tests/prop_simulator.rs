//! Property-based tests of the multi-core simulator's central invariants:
//! branch-free SPMD code never leaves lockstep, synchronization
//! bookkeeping always balances, and the simulation is deterministic.

use proptest::prelude::*;
use ulp_lockstep::isa::{encode, AluOp, Instr, Reg, ShiftKind, UnaryOp};
use ulp_lockstep::platform::{Platform, PlatformConfig};

/// Strategy: one instruction of a straight-line (branch-free) SPMD body.
/// `r2` holds the core's private-bank base and is never clobbered; loads
/// and stores stay inside the private bank.
fn body_instr() -> impl Strategy<Value = Instr> {
    let data_reg = || prop::sample::select(&[Reg::R0, Reg::R1, Reg::R3, Reg::R4, Reg::R5][..]);
    prop_oneof![
        (data_reg(), data_reg()).prop_map(|(rd, rs)| Instr::Alu {
            op: AluOp::Add,
            rd,
            rs
        }),
        (data_reg(), data_reg()).prop_map(|(rd, rs)| Instr::Alu {
            op: AluOp::Xor,
            rd,
            rs
        }),
        (data_reg(), -16i8..=15).prop_map(|(rd, imm)| Instr::AddI { rd, imm }),
        (data_reg(), any::<u8>()).prop_map(|(rd, imm)| Instr::MovI { rd, imm }),
        (
            prop::sample::select(&ShiftKind::ALL[..]),
            data_reg(),
            0u8..=15
        )
            .prop_map(|(kind, rd, amount)| Instr::Shift { kind, rd, amount }),
        (prop::sample::select(&UnaryOp::ALL[..]), data_reg())
            .prop_map(|(op, rd)| Instr::Unary { op, rd }),
        (data_reg(), 0i8..=15).prop_map(|(rd, offset)| Instr::Ld {
            rd,
            base: Reg::R2,
            offset
        }),
        (data_reg(), 0i8..=15).prop_map(|(rs, offset)| Instr::St {
            rs,
            base: Reg::R2,
            offset
        }),
        Just(Instr::Nop),
    ]
}

/// Builds the full program image: prologue establishing `r2 = id << 11`,
/// then the body, then `HALT`.
fn build_program(body: &[Instr]) -> Vec<u16> {
    let mut words = Vec::with_capacity(body.len() + 4);
    for i in [
        Instr::Csr {
            op: ulp_lockstep::isa::CsrOp::RdId,
            rd: Reg::R2,
        },
        Instr::Shift {
            kind: ShiftKind::Shl,
            rd: Reg::R2,
            amount: 11,
        },
    ] {
        words.push(encode(i).expect("prologue encodes"));
    }
    for i in body {
        words.push(encode(*i).expect("body encodes"));
    }
    words.push(encode(Instr::Halt).expect("halt encodes"));
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Branch-free SPMD code executes in perfect lockstep on both designs:
    /// every instruction is fetched exactly once (broadcast to all eight
    /// cores) and no stall ever occurs.
    #[test]
    fn branchless_spmd_never_leaves_lockstep(body in prop::collection::vec(body_instr(), 1..60)) {
        let words = build_program(&body);
        for with_sync in [true, false] {
            let mut p = Platform::new(
                PlatformConfig::paper(with_sync).with_max_cycles(1_000_000),
            ).expect("valid config");
            p.load_im(0, &words);
            p.run().expect("terminates");
            let s = p.stats();
            prop_assert_eq!(s.im.bank_reads, words.len() as u64, "one fetch per instruction");
            prop_assert_eq!(s.im.broadcast_extra, words.len() as u64 * 7);
            prop_assert_eq!(s.ixbar.stalls, 0);
            prop_assert_eq!(s.core_total.fetch_stall_cycles, 0);
            prop_assert_eq!(s.core_total.mem_stall_cycles, 0);
            prop_assert!((s.avg_lockstep_width() - 8.0).abs() < 1e-9);
            prop_assert_eq!(s.cycles, 2 * words.len() as u64);
        }
    }

    /// The simulation is fully deterministic: identical runs produce
    /// identical statistics.
    #[test]
    fn deterministic(body in prop::collection::vec(body_instr(), 1..40)) {
        let words = build_program(&body);
        let run = || {
            let mut p = Platform::new(
                PlatformConfig::paper_with_sync().with_max_cycles(1_000_000),
            ).expect("valid config");
            p.load_im(0, &words);
            p.run().expect("terminates");
            p.stats()
        };
        prop_assert_eq!(run(), run());
    }

    /// Synchronization bookkeeping balances for arbitrary section shapes:
    /// after a program whose every core passes through `k` sequential
    /// sections with data-dependent duration, every sync word is zero and
    /// check-ins equal check-outs.
    #[test]
    fn barrier_bookkeeping_balances(
        k in 1usize..5,
        masks in prop::collection::vec(0u8..=7, 1..5),
        spin in 1u8..6,
    ) {
        let sections = k.min(masks.len());
        let mut src = String::from(
            "   rdid r1
                li   r3, 18432
                wrsync r3\n",
        );
        for (idx, mask) in masks.iter().take(sections).enumerate() {
            // Per-core data-dependent duration: (id & mask) * spin rounds.
            src.push_str(&format!(
                "   sinc #{idx}
                    mov  r5, r1
                    movi r0, #{mask}
                    and  r5, r0
                    movi r0, #{spin}
                    mul  r5, r0
                    inc  r5
                sp{idx}: addi r5, #-1
                    bne  sp{idx}
                    sdec #{idx}\n",
            ));
        }
        src.push_str("    halt\n");
        let program = ulp_lockstep::isa::asm::assemble(&src).expect("valid asm");

        let mut p = Platform::new(
            PlatformConfig::paper_with_sync().with_max_cycles(2_000_000),
        ).expect("valid config");
        p.load_program(&program);
        p.run().expect("no deadlock");
        let s = p.stats();
        let sync = s.sync.expect("synchronizer present");
        prop_assert_eq!(sync.checkin_requests, 8 * sections as u64);
        prop_assert_eq!(sync.checkout_requests, 8 * sections as u64);
        prop_assert_eq!(sync.releases, sections as u64);
        prop_assert_eq!(sync.underflows, 0);
        for idx in 0..sections as u16 {
            prop_assert_eq!(p.dm(18432 + idx), 0, "sync word {} cleared", idx);
        }
        // Every core completed its sections (same number of check-ins).
        for c in &s.cores {
            prop_assert_eq!(c.checkins, sections as u64);
            prop_assert_eq!(c.checkouts, sections as u64);
        }
    }
}

//! Differential testing of platform checkpoints: pausing a run at an
//! arbitrary cycle, snapshotting, round-tripping the snapshot through its
//! byte encoding, restoring into a *fresh* platform (or in place into a
//! recycled one) and running to completion must be bit-identical to the
//! golden uninterrupted run — registers, flags, PCs, the whole data
//! memory, cycle counts, every [`SimStats`] counter *including* the JIT
//! tier counters, and attached-observer artifacts.

use proptest::prelude::*;
use ulp_lockstep::isa::{encode, AluOp, Cond, CsrOp, Instr, Reg, ShiftKind, UnaryOp};
use ulp_lockstep::platform::{
    BankHeatMap, Checkpoint, ExecTier, PcTrace, Platform, PlatformConfig, RestoreError,
    RunProgress, SimStats,
};

/// Strategy: one instruction of an SPMD body — same shape as the exec-tier
/// differential suite (forward-only skips so every program terminates,
/// loads/stores confined to the core's private DM bank through `r2`).
fn body_instr() -> impl Strategy<Value = Instr> {
    let reg = || prop::sample::select(&[Reg::R0, Reg::R1, Reg::R3, Reg::R4, Reg::R5][..]);
    prop_oneof![
        (prop::sample::select(&AluOp::ALL[..]), reg(), reg()).prop_map(|(op, rd, rs)| Instr::Alu {
            op,
            rd,
            rs
        }),
        (reg(), -16i8..=15).prop_map(|(rd, imm)| Instr::AddI { rd, imm }),
        (reg(), any::<u8>()).prop_map(|(rd, imm)| Instr::MovI { rd, imm }),
        (prop::sample::select(&ShiftKind::ALL[..]), reg(), 0u8..=15)
            .prop_map(|(kind, rd, amount)| Instr::Shift { kind, rd, amount }),
        (prop::sample::select(&UnaryOp::ALL[..]), reg())
            .prop_map(|(op, rd)| Instr::Unary { op, rd }),
        (reg(), 0i8..=15).prop_map(|(rd, offset)| Instr::Ld {
            rd,
            base: Reg::R2,
            offset
        }),
        (reg(), 0i8..=15).prop_map(|(rs, offset)| Instr::St {
            rs,
            base: Reg::R2,
            offset
        }),
        (prop::sample::select(&Cond::ALL[..]), 0i16..=1)
            .prop_map(|(cond, offset)| Instr::Branch { cond, offset }),
        Just(Instr::Nop),
    ]
}

/// Prologue `r2 = id << 11`, body, HALT (with a NOP landing pad).
fn build_program(body: &[Instr]) -> Vec<u16> {
    let mut words = Vec::with_capacity(body.len() + 5);
    for i in [
        Instr::Csr {
            op: CsrOp::RdId,
            rd: Reg::R2,
        },
        Instr::Shift {
            kind: ShiftKind::Shl,
            rd: Reg::R2,
            amount: 11,
        },
    ] {
        words.push(encode(i).expect("prologue encodes"));
    }
    for i in body {
        words.push(encode(*i).expect("body encodes"));
    }
    words.push(encode(Instr::Halt).expect("halt encodes"));
    words.push(encode(Instr::Nop).expect("nop encodes"));
    words.push(encode(Instr::Halt).expect("halt encodes"));
    words
}

/// Full machine state after a run. Unlike the cross-tier suite, both runs
/// here use the *same* tier, so even the JIT counters must match bit for
/// bit.
#[derive(Debug, PartialEq)]
struct MachineState {
    cycles: u64,
    stats: SimStats,
    regs: Vec<Vec<u16>>,
    pcs: Vec<u16>,
    flags: Vec<ulp_lockstep::isa::Flags>,
    dm: Vec<u16>,
}

fn capture(p: &Platform) -> MachineState {
    let cores = p.config().num_cores;
    MachineState {
        cycles: p.cycle(),
        regs: (0..cores)
            .map(|i| Reg::ALL.iter().map(|&r| p.core(i).reg(r)).collect())
            .collect(),
        pcs: (0..cores).map(|i| p.core(i).pc()).collect(),
        flags: (0..cores).map(|i| p.core(i).flags()).collect(),
        dm: p.dm_slice(0, p.config().dm_words),
        stats: p.stats(),
    }
}

fn config(tier: ExecTier, cores: usize) -> PlatformConfig {
    let mut cfg = PlatformConfig::paper(true)
        .with_cores(cores)
        .with_max_cycles(2_000_000)
        .with_exec_tier(tier);
    cfg.jit_hot_threshold = 2;
    cfg
}

/// Golden uninterrupted run of `words`.
fn golden(words: &[u16], tier: ExecTier, cores: usize) -> MachineState {
    let mut p = Platform::new(config(tier, cores)).expect("valid config");
    p.load_im(0, words);
    p.run().expect("terminates");
    capture(&p)
}

/// Runs `words` to the pause point, snapshots through the byte encoding,
/// restores into a fresh platform and finishes the run there.
fn paused_and_migrated(words: &[u16], tier: ExecTier, cores: usize, pause: u64) -> MachineState {
    let mut p = Platform::new(config(tier, cores)).expect("valid config");
    p.load_im(0, words);
    match p.run_until(pause).expect("first slice runs") {
        RunProgress::Done(_) => capture(&p),
        RunProgress::Paused => {
            assert_eq!(p.cycle(), pause, "pause lands exactly on the limit");
            let blob = p.snapshot().to_bytes();
            let ckpt = Checkpoint::from_bytes(&blob).expect("blob round-trips");
            let mut q = Platform::restore(&ckpt).expect("restore succeeds");
            q.run().expect("resumed run terminates");
            capture(&q)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Restore-at-an-arbitrary-cycle is bit-identical to never pausing,
    /// on both execution tiers, at 2, 4 and 8 cores.
    #[test]
    fn restore_mid_run_is_bit_identical(
        body in prop::collection::vec(body_instr(), 1..48),
        pause_seed in any::<u64>(),
    ) {
        let words = build_program(&body);
        for tier in [ExecTier::Interpreted, ExecTier::Compiled] {
            for cores in [2usize, 4, 8] {
                let reference = golden(&words, tier, cores);
                let pause = 1 + pause_seed % reference.cycles.max(1);
                let resumed = paused_and_migrated(&words, tier, cores, pause);
                prop_assert_eq!(
                    &reference, &resumed,
                    "tier {:?} cores {} pause {}", tier, cores, pause
                );
            }
        }
    }
}

/// A hot lockstep loop checkpointed at *every* cycle of its run: the
/// compiled tier's translation cache, hotness counters and in-flight
/// trace cursors all survive snapshot/restore bit-exactly.
#[test]
fn compiled_loop_survives_checkpoint_at_every_cycle() {
    let src = "
        rdid r2
        movi r0, #11
    loop: addi r0, #-1
        sinc #0
        bne loop
        halt
    ";
    let program = ulp_lockstep::isa::asm::assemble(src).expect("valid asm");
    let mut cfg = PlatformConfig::paper_with_sync().with_exec_tier(ExecTier::Compiled);
    cfg.jit_hot_threshold = 2;

    let mut p = Platform::new(cfg.clone()).expect("valid config");
    p.load_program(&program);
    p.run().expect("terminates");
    let reference = capture(&p);
    assert!(
        reference.stats.jit.compiled_cycles > 0,
        "loop runs compiled"
    );
    assert!(reference.stats.jit.hits > 0, "trace is reused");

    for pause in 1..reference.cycles {
        let mut q = Platform::new(cfg.clone()).expect("valid config");
        q.load_program(&program);
        assert!(matches!(
            q.run_until(pause).expect("first slice"),
            RunProgress::Paused
        ));
        let ckpt = q.snapshot();
        let mut r = Platform::restore(&ckpt).expect("restore succeeds");
        r.run().expect("resumed run terminates");
        assert_eq!(reference, capture(&r), "diverged after pause at {pause}");
    }
}

/// The in-place [`Platform::restore_from`] path — a *recycled* platform
/// (mid-way through a different program) adopts a checkpoint and finishes
/// the run bit-identically. This is the service's migration fast path.
#[test]
fn restore_in_place_onto_recycled_platform() {
    let job = ulp_lockstep::isa::asm::assemble(
        "
        rdid r2
        movi r0, #40
    loop: addi r0, #-1
        bne loop
        halt
    ",
    )
    .expect("valid asm");
    let other = ulp_lockstep::isa::asm::assemble(
        "
        movi r5, #7
        movi r6, #9
        add r5, r6
        halt
    ",
    )
    .expect("valid asm");

    let mut cfg = PlatformConfig::paper_with_sync().with_exec_tier(ExecTier::Compiled);
    cfg.jit_hot_threshold = 2;

    let mut p = Platform::new(cfg.clone()).expect("valid config");
    p.load_program(&job);
    p.run().expect("terminates");
    let reference = capture(&p);

    let mut q = Platform::new(cfg.clone()).expect("valid config");
    q.load_program(&job);
    assert!(matches!(
        q.run_until(reference.cycles / 2).expect("first slice"),
        RunProgress::Paused
    ));
    let ckpt = q.snapshot();

    // The adopting platform has run (and translated) something else.
    let mut r = Platform::new(cfg).expect("valid config");
    r.load_program(&other);
    r.run().expect("other program terminates");
    r.reset();
    r.restore_from(&ckpt).expect("in-place restore succeeds");
    r.run().expect("resumed run terminates");
    assert_eq!(reference, capture(&r));
}

/// Attached observers checkpoint with the platform: a PC trace and a DM
/// bank heat map restored mid-run end up with exactly the artifacts of an
/// uninterrupted instrumented run.
#[test]
fn attached_observers_round_trip_through_checkpoints() {
    let program = ulp_lockstep::isa::asm::assemble(
        "
        rdid r2
        movi r0, #25
    loop: st r0, [r2]
        addi r0, #-1
        bne loop
        halt
    ",
    )
    .expect("valid asm");
    let cfg = PlatformConfig::paper_with_sync();

    let mut p = Platform::new(cfg.clone()).expect("valid config");
    let trace = p.attach(Box::new(PcTrace::new(4096)));
    let heat = p.attach(Box::new(BankHeatMap::for_dm(&cfg, 16)));
    p.load_program(&program);
    p.run().expect("terminates");
    let reference = capture(&p);
    let reference_rows: Vec<_> = p
        .observer_as::<PcTrace>(&trace)
        .expect("trace attached")
        .rows()
        .to_vec();
    let reference_heat: Vec<_> = p
        .observer_as::<BankHeatMap>(&heat)
        .expect("heat map attached")
        .rows()
        .to_vec();
    assert!(!reference_rows.is_empty(), "trace recorded rows");

    let mut q = Platform::new(cfg.clone()).expect("valid config");
    q.attach(Box::new(PcTrace::new(4096)));
    q.attach(Box::new(BankHeatMap::for_dm(&cfg, 16)));
    q.load_program(&program);
    assert!(matches!(
        q.run_until(reference.cycles / 3).expect("first slice"),
        RunProgress::Paused
    ));
    let blob = q.snapshot().to_bytes();
    let ckpt = Checkpoint::from_bytes(&blob).expect("blob round-trips");
    assert_eq!(ckpt.observers.len(), 2, "both observers checkpointed");

    // Observers must be attached *before* the restore so the checkpointed
    // state has somewhere to land.
    let mut r = Platform::new(cfg.clone()).expect("valid config");
    let trace = r.attach(Box::new(PcTrace::new(4096)));
    let heat = r.attach(Box::new(BankHeatMap::for_dm(&cfg, 16)));
    r.restore_from(&ckpt).expect("restore succeeds");
    r.run().expect("resumed run terminates");
    assert_eq!(reference, capture(&r));
    assert_eq!(
        reference_rows,
        r.observer_as::<PcTrace>(&trace).expect("attached").rows(),
        "PC trace artifacts identical"
    );
    assert_eq!(
        reference_heat,
        r.observer_as::<BankHeatMap>(&heat)
            .expect("attached")
            .rows(),
        "heat-map artifacts identical"
    );

    // Restoring into a platform whose observer has different geometry is
    // a typed failure, not silent drift.
    let mut bad = Platform::new(cfg.clone()).expect("valid config");
    bad.attach(Box::new(BankHeatMap::for_dm(&cfg, 999)));
    assert_eq!(
        bad.restore_from(&ckpt),
        Err(RestoreError::ObserverMismatch {
            label: "bank-heat-map".into()
        })
    );
}

/// Structural config mismatches are rejected with a typed error; the
/// adopted (non-structural) run parameters come from the checkpoint.
#[test]
fn restore_rejects_structural_mismatch_and_adopts_run_parameters() {
    let program = ulp_lockstep::isa::asm::assemble(
        "
        movi r0, #30
    loop: addi r0, #-1
        bne loop
        halt
    ",
    )
    .expect("valid asm");
    let cfg = PlatformConfig::paper_with_sync()
        .with_max_cycles(123_456)
        .with_exec_tier(ExecTier::Compiled);
    let mut p = Platform::new(cfg.clone()).expect("valid config");
    p.load_program(&program);
    assert!(matches!(
        p.run_until(10).expect("first slice"),
        RunProgress::Paused
    ));
    let ckpt = p.snapshot();

    // Fewer cores: structurally different.
    let mut small =
        Platform::new(PlatformConfig::paper_with_sync().with_cores(4)).expect("valid config");
    assert_eq!(small.restore_from(&ckpt), Err(RestoreError::ConfigMismatch));

    // Same structure, different budget/tier: adopted from the checkpoint.
    let mut q = Platform::new(
        PlatformConfig::paper_with_sync()
            .with_max_cycles(50)
            .with_exec_tier(ExecTier::Interpreted),
    )
    .expect("valid config");
    q.restore_from(&ckpt).expect("restore succeeds");
    assert_eq!(q.config().max_cycles, 123_456);
    assert_eq!(q.config().exec_tier, ExecTier::Compiled);
    q.run().expect("resumed run terminates");
}

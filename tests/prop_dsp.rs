//! Property-based tests of the golden DSP and of the assembly kernels
//! against it on randomized inputs.

use proptest::prelude::*;
use ulp_lockstep::biosignal::{
    closing, combine_two_leads, delineate, dilation, erosion, isqrt32, mrpfltr, opening,
    DelineationConfig, Mark, MrpfltrConfig,
};
use ulp_lockstep::cpu::SimpleHost;
use ulp_lockstep::isa::asm::assemble;
use ulp_lockstep::kernels::{
    layout::{buffer_base, BufferLayout},
    mrpfltr_source, sqrt32_source, KernelOptions, MrpfltrParams, Sqrt32Params,
};

fn signal(max_len: usize) -> impl Strategy<Value = Vec<i16>> {
    prop::collection::vec(-2047i16..=2047, 4..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Floor square root is exact for arbitrary 32-bit radicands.
    #[test]
    fn isqrt32_is_exact(v in any::<u32>()) {
        let r = isqrt32(v) as u64;
        prop_assert!(r * r <= v as u64);
        prop_assert!((r + 1) * (r + 1) > v as u64);
    }

    /// Morphological operator laws on arbitrary signals.
    #[test]
    fn morphology_laws(x in signal(128), l in prop::sample::select(&[1usize, 3, 5, 9][..])) {
        let e = erosion(&x, l);
        let d = dilation(&x, l);
        let o = opening(&x, l);
        let c = closing(&x, l);
        for i in 0..x.len() {
            prop_assert!(e[i] <= x[i] && x[i] <= d[i], "bounding");
            prop_assert!(o[i] <= x[i], "opening anti-extensive");
            prop_assert!(c[i] >= x[i], "closing extensive");
            prop_assert!(e[i] <= o[i] && o[i] <= c[i] && c[i] <= d[i], "ordering");
        }
        prop_assert_eq!(opening(&o, l), o.clone(), "opening idempotent");
        prop_assert_eq!(closing(&c, l), c.clone(), "closing idempotent");
        // Duality: erosion(-x) == -dilation(x).
        let neg: Vec<i16> = x.iter().map(|v| -v).collect();
        let en = erosion(&neg, l);
        prop_assert_eq!(en, d.iter().map(|v| -v).collect::<Vec<_>>());
    }

    /// Monotonicity: a pointwise-larger signal never produces a smaller
    /// erosion/dilation.
    #[test]
    fn morphology_monotonic(x in signal(64), bump in 0i16..200, l in prop::sample::select(&[3usize, 5][..])) {
        let y: Vec<i16> = x.iter().map(|v| v.saturating_add(bump).min(2047)).collect();
        let (ex, ey) = (erosion(&x, l), erosion(&y, l));
        let (dx, dy) = (dilation(&x, l), dilation(&y, l));
        for i in 0..x.len() {
            prop_assert!(ex[i] <= ey[i]);
            prop_assert!(dx[i] <= dy[i]);
        }
    }

    /// The filter output is bounded by the corrected signal's range and
    /// the marks are confined to the interior.
    #[test]
    fn pipeline_outputs_are_sane(x in signal(96)) {
        let y = mrpfltr(&x, &MrpfltrConfig { baseline_open: 5, baseline_close: 7, noise: 3 });
        prop_assert_eq!(y.len(), x.len());
        let marks = delineate(&x, &DelineationConfig { scale_small: 2, scale_large: 4, threshold: 200 });
        prop_assert_eq!(marks.len(), x.len());
        prop_assert_eq!(marks[0], Mark::None);
        prop_assert_eq!(*marks.last().expect("non-empty"), Mark::None);
    }
}

proptest! {
    // Simulated-kernel comparisons are slower; fewer cases suffice.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The SQRT32 assembly kernel matches the golden model bit-exactly on
    /// random lead pairs (single-core fast path).
    #[test]
    fn sqrt32_kernel_matches_golden_on_random_leads(
        a in prop::collection::vec(-2047i16..=2047, 8..24),
        b_seed in any::<u16>(),
    ) {
        let n = a.len();
        let b: Vec<i16> = (0..n)
            .map(|i| ((b_seed as i32 * 37 + i as i32 * 131) % 4095 - 2047) as i16)
            .collect();
        let layout = BufferLayout::Packed;
        let src = sqrt32_source(&Sqrt32Params { n: n as u16 }, &KernelOptions::for_design(true));
        let prog = assemble(&src).expect("kernel assembles");
        let mut host = SimpleHost::new(&prog.to_vec(0, prog.extent()));
        for i in 0..n {
            host.set_dm(buffer_base(layout, 0, 0) + i as u16, a[i] as u16);
            host.set_dm(buffer_base(layout, 0, 1) + i as u16, b[i] as u16);
        }
        host.run(5_000_000).expect("kernel halts");
        let out: Vec<u16> = (0..n as u16)
            .map(|i| host.dm(buffer_base(layout, 0, 2) + i))
            .collect();
        prop_assert_eq!(out, combine_two_leads(&a, &b));
    }

    /// The MRPFLTR assembly kernel (amortized scans) matches the golden
    /// model bit-exactly on random signals.
    #[test]
    fn mrpfltr_kernel_matches_golden_on_random_signals(
        x in prop::collection::vec(-2047i16..=2047, 16..40),
    ) {
        let n = x.len();
        let layout = BufferLayout::Packed;
        let params = MrpfltrParams {
            n: n as u16,
            baseline_open: 5,
            baseline_close: 7,
            noise: 3,
        };
        let src = mrpfltr_source(&params, &KernelOptions::for_design(true));
        let prog = assemble(&src).expect("kernel assembles");
        let mut host = SimpleHost::new(&prog.to_vec(0, prog.extent()));
        for (i, &v) in x.iter().enumerate() {
            host.set_dm(buffer_base(layout, 0, 0) + i as u16, v as u16);
        }
        host.run(20_000_000).expect("kernel halts");
        let out: Vec<i16> = (0..n as u16)
            .map(|i| host.dm(buffer_base(layout, 0, 5) + i) as i16)
            .collect();
        prop_assert_eq!(out, mrpfltr(&x, &params.to_config()));
    }
}

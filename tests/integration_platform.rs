//! Cross-crate integration tests of the platform itself: assembler to
//! multi-core execution, interrupts, MIMD-style operation and the
//! crossbar/synchronizer interplay on hand-written programs.

use ulp_lockstep::isa::asm::assemble;
use ulp_lockstep::platform::{Platform, PlatformConfig, PlatformError};

fn run(src: &str, with_sync: bool) -> Platform {
    let program = assemble(src).unwrap_or_else(|e| panic!("asm: {e}"));
    let mut p = Platform::new(PlatformConfig::paper(with_sync).with_max_cycles(5_000_000))
        .expect("valid config");
    p.load_program(&program);
    p.run().unwrap_or_else(|e| panic!("run: {e}"));
    p
}

#[test]
fn parallel_reduction_tree_with_barriers() {
    // Every core writes its id+1 into a shared table; after a barrier,
    // core 0 sums the table. Exercises cross-bank writes, the barrier and
    // post-barrier single-core execution.
    let src = "
        rdid r1
        li   r3, 18432
        wrsync r3
        li   r2, 16384      ; shared table in bank 8
        add  r2, r1
        mov  r4, r1
        inc  r4
        st   r4, [r2]       ; table[id] = id + 1
        sinc #0
        sdec #0             ; barrier: all writes visible
        cmpi r1, #0
        bne  done
        ; core 0: sum the table
        li   r2, 16384
        clr  r4
        movi r5, #8
sum:    ldp  r0, [r2]
        add  r4, r0
        addi r5, #-1
        bne  sum
        li   r2, 16400
        st   r4, [r2]       ; result
done:   halt";
    let p = run(src, true);
    assert_eq!(p.dm(16400), 36, "1+2+...+8");
}

#[test]
fn producer_consumer_pair_with_two_barriers() {
    // Core 0 produces a value; after barrier 0 every core consumes it,
    // transforms it, and stores to its own bank; after barrier 1 core 7
    // checks all results. Data flows between cores purely through DM.
    let src = "
        rdid r1
        li   r3, 18432
        wrsync r3
        cmpi r1, #0
        bne  wait
        li   r2, 16384
        movi r4, #21
        st   r4, [r2]       ; produce
wait:   sinc #0
        sdec #0
        li   r2, 16384
        ld   r4, [r2]       ; everyone consumes (broadcast read)
        add  r4, r4         ; transform: x2
        mov  r2, r1
        shl  r2, #11
        st   r4, [r2]       ; private result
        sinc #1
        sdec #1
        cmpi r1, #7
        bne  done
        clr  r5             ; core 7 verifies
        clr  r2
        movi r0, #8
chk:    ld   r4, [r2]
        cmpi r4, #10        ; wait: 42 > 15 — compare via sub
        mov  r3, r4
        li   r4, 42
        cmp  r3, r4
        beq  ok
        movi r5, #1         ; flag error
ok:     li   r4, 2048
        add  r2, r4
        addi r0, #-1
        bne  chk
        li   r2, 16401
        st   r5, [r2]
done:   halt";
    let p = run(src, true);
    assert_eq!(p.dm(16401), 0, "core 7 saw 42 in every bank");
}

#[test]
fn mimd_mode_different_code_per_core() {
    // The shared IM also supports MIMD: each core jumps to its own routine
    // through a dispatch on its id. No broadcast benefit, but correct.
    let src = "
        rdid r1
        movi r2, #1
        and  r2, r1         ; odd/even split
        cmpi r2, #0
        beq  evens
        ; odd cores: compute 3 * id
        mov  r3, r1
        add  r3, r1
        add  r3, r1
        br   store
evens:  mov  r3, r1
        shl  r3, #2         ; even cores: 4 * id
store:  mov  r2, r1
        shl  r2, #11
        st   r3, [r2]
        halt";
    let p = run(src, false);
    for id in 0..8u16 {
        let want = if id % 2 == 1 { 3 * id } else { 4 * id };
        assert_eq!(p.dm(id * 2048), want, "core {id}");
    }
}

#[test]
fn interrupt_driven_sample_processing() {
    // Cores sleep; the "ADC" (test harness) raises per-core interrupts;
    // each ISR increments a counter and the main loop re-sleeps. After 3
    // interrupts the core halts.
    let src = "
        br   main
        br   isr
main:   rdid r1
        mov  r2, r1
        shl  r2, #11
        clr  r4             ; counter
        ei
loop:   sleep
        cmpi r4, #3
        blt  loop
        st   r4, [r2]
        halt
isr:    inc  r4
        iret";
    let program = assemble(src).unwrap();
    let mut p = Platform::new(PlatformConfig::paper_with_sync().with_max_cycles(100_000))
        .expect("valid config");
    p.load_program(&program);

    // Drive three interrupt rounds on all cores.
    for _ in 0..3 {
        for _ in 0..50 {
            p.step();
        }
        for core in 0..8 {
            p.raise_irq(core);
        }
    }
    for _ in 0..500 {
        p.step();
        if p.all_halted() {
            break;
        }
    }
    assert!(p.all_halted(), "all cores halted after three interrupts");
    for id in 0..8u16 {
        assert_eq!(p.dm(id * 2048), 3, "core {id} counted its interrupts");
    }
}

#[test]
fn lock_output_serializes_racing_checkins_with_plain_access() {
    // One core hammers plain loads at the sync word's address while the
    // others check in/out: the word lock must serialize cleanly and the
    // barrier still balances (core 0 reads either 0 or a mid-barrier
    // value, never a torn word — enforced by the lock stalls).
    let src = "
        rdid r1
        li   r3, 18432
        wrsync r3
        cmpi r1, #0
        beq  spy
        sinc #0
        mov  r5, r1
spl:    addi r5, #-1
        bne  spl
        sdec #0
        halt
spy:    movi r4, #30
rd:     ld   r0, [r3]       ; racing reads against the locked word
        addi r4, #-1
        bne  rd
        halt";
    let p = run(src, true);
    assert_eq!(p.dm(18432), 0, "sync word cleared after barrier");
    let s = p.stats();
    let sync = s.sync.expect("synchronizer");
    assert_eq!(sync.checkin_requests, 7);
    assert_eq!(sync.checkout_requests, 7);
    assert_eq!(sync.underflows, 0);
}

#[test]
fn timeout_surfaces_as_error_not_hang() {
    let program = assemble("loop: br loop").unwrap();
    let mut p = Platform::new(PlatformConfig::paper_with_sync().with_max_cycles(10_000))
        .expect("valid config");
    p.load_program(&program);
    match p.run() {
        Err(PlatformError::Timeout { budget }) => assert_eq!(budget, 10_000),
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn umbrella_crate_reexports_compose() {
    // The umbrella crate's re-exports are sufficient to drive the whole
    // stack (this is what downstream users see).
    use ulp_lockstep::{biosignal, cpu, isa, mem, power, sync};
    let _ = isa::arch::NUM_CORES;
    let _ = cpu::CoreStats::default();
    let _ = mem::BankMapping::Blocked;
    let _ = sync::sync_word::make(1, 1);
    let _ = biosignal::EcgConfig::default();
    let _ = power::VoltageModel::default();
}

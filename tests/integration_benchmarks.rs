//! Cross-crate integration tests: the paper's qualitative claims asserted
//! end to end at realistic signal lengths.

use ulp_lockstep::kernels::{run_benchmark, Benchmark, WorkloadConfig};
use ulp_lockstep::power::{Activity, PowerModel};

/// A mid-size workload: long enough for the baseline's divergence to
/// develop (the full paper-scale run lives in the `table1`/`fig3`/`intext`
/// binaries), short enough for a debug-build test.
fn midsize() -> WorkloadConfig {
    WorkloadConfig {
        n: 128,
        ..WorkloadConfig::paper()
    }
}

#[test]
fn all_outputs_bit_exact_at_midsize() {
    let cfg = midsize();
    for benchmark in Benchmark::ALL {
        for with_sync in [true, false] {
            let run = run_benchmark(benchmark, with_sync, &cfg)
                .unwrap_or_else(|e| panic!("{benchmark} sync={with_sync}: {e}"));
            run.verify()
                .unwrap_or_else(|e| panic!("{benchmark} sync={with_sync}: {e}"));
        }
    }
}

#[test]
fn synchronizer_speeds_up_every_benchmark_at_midsize() {
    let cfg = midsize();
    for benchmark in Benchmark::ALL {
        let with = run_benchmark(benchmark, true, &cfg).unwrap();
        let without = run_benchmark(benchmark, false, &cfg).unwrap();
        let speedup = without.stats.cycles as f64 / with.stats.cycles as f64;
        assert!(
            speedup > 1.05,
            "{benchmark}: speedup only {speedup:.2} ({} vs {})",
            with.stats.cycles,
            without.stats.cycles
        );
        // Section V-B: the improved design lies in the paper's Ops/cycle
        // band and the baseline clearly below it.
        let r_with = with.stats.ops_per_cycle();
        let r_without = without.stats.ops_per_cycle();
        assert!(
            (2.2..=4.0).contains(&r_with),
            "{benchmark}: with-sync ops/cycle {r_with:.2}"
        );
        assert!(r_without < r_with, "{benchmark}");
    }
}

#[test]
fn broadcasting_cuts_im_accesses_and_bounds_dm_overhead() {
    let cfg = midsize();
    let mut total_dm_with = 0u64;
    let mut total_dm_without = 0u64;
    for benchmark in Benchmark::ALL {
        let with = run_benchmark(benchmark, true, &cfg).unwrap();
        let without = run_benchmark(benchmark, false, &cfg).unwrap();
        let reduction =
            1.0 - with.stats.im.total_accesses() as f64 / without.stats.im.total_accesses() as f64;
        assert!(
            reduction > 0.25,
            "{benchmark}: IM access reduction only {:.0} %",
            reduction * 100.0
        );
        total_dm_with += with.stats.dm.total_accesses();
        total_dm_without += without.stats.dm.total_accesses();
    }
    // The paper: "the total number of DM accesses is increased by less
    // than 10%" — aggregated over the benchmarks.
    let dm_increase = total_dm_with as f64 / total_dm_without as f64 - 1.0;
    assert!(
        dm_increase < 0.10,
        "aggregate DM increase {:.1} %",
        dm_increase * 100.0
    );
}

#[test]
fn sync_word_area_is_clean_after_every_run() {
    let cfg = midsize();
    for benchmark in Benchmark::ALL {
        let run = run_benchmark(benchmark, true, &cfg).unwrap();
        let sync = run.stats.sync.expect("synchronizer present");
        assert_eq!(sync.underflows, 0, "{benchmark}: unbalanced sections");
        assert_eq!(
            sync.checkin_requests, sync.checkout_requests,
            "{benchmark}: check-ins must balance check-outs"
        );
    }
}

#[test]
fn power_model_prefers_the_improved_design_everywhere() {
    let cfg = midsize();
    let model = PowerModel::calibrated_default();
    for benchmark in Benchmark::ALL {
        let with = run_benchmark(benchmark, true, &cfg).unwrap();
        let without = run_benchmark(benchmark, false, &cfg).unwrap();
        let act_with = Activity::from_stats(&with.stats);
        let act_without = Activity::from_stats(&without.stats);

        // The improved design extends the feasible workload range...
        assert!(model.max_workload(&act_with) > model.max_workload(&act_without));

        // ...and saves power at every feasible common workload.
        let top = model.max_workload(&act_without);
        for w in [top * 0.1, top * 0.5, top] {
            let saving = model
                .saving_at(&act_with, &act_without, w)
                .expect("feasible on both");
            assert!(
                saving > 0.0,
                "{benchmark}: negative saving {saving:.2} at {w:.0} MOps/s"
            );
        }
    }
}

#[test]
fn both_layouts_and_granularities_stay_bit_exact() {
    use ulp_lockstep::kernels::{BufferLayout, SyncGranularity};
    let mut cfg = WorkloadConfig::quick_test();
    for layout in [BufferLayout::Packed, BufferLayout::PrivateBank] {
        for granularity in [SyncGranularity::PerSample, SyncGranularity::PerElement] {
            cfg.layout = layout;
            cfg.granularity = granularity;
            for benchmark in Benchmark::ALL {
                let run = run_benchmark(benchmark, true, &cfg)
                    .unwrap_or_else(|e| panic!("{benchmark} {layout:?} {granularity:?}: {e}"));
                run.verify()
                    .unwrap_or_else(|e| panic!("{benchmark} {layout:?} {granularity:?}: {e}"));
            }
        }
    }
}

//! Differential testing: the single-core [`SimpleHost`] reference
//! interpreter and the full multi-core [`Platform`] restricted to one core
//! must agree exactly — architectural state *and* cycle counts — for
//! arbitrary programs. This pins the platform's arbitration layers to
//! "transparent when uncontended".

use proptest::prelude::*;
use ulp_lockstep::cpu::SimpleHost;
use ulp_lockstep::isa::{encode, AluOp, Cond, CsrOp, Instr, Reg, ShiftKind, UnaryOp};
use ulp_lockstep::platform::{Platform, PlatformConfig};

/// Strategy: instructions that always make forward progress on one core
/// (no backward branches, balanced sync sections added separately).
fn safe_instr() -> impl Strategy<Value = Instr> {
    let reg = || prop::sample::select(&[Reg::R0, Reg::R1, Reg::R3, Reg::R4, Reg::R5][..]);
    prop_oneof![
        (prop::sample::select(&AluOp::ALL[..]), reg(), reg()).prop_map(|(op, rd, rs)| Instr::Alu {
            op,
            rd,
            rs
        }),
        (reg(), -16i8..=15).prop_map(|(rd, imm)| Instr::AddI { rd, imm }),
        (reg(), any::<u8>()).prop_map(|(rd, imm)| Instr::MovI { rd, imm }),
        (reg(), any::<u8>()).prop_map(|(rd, imm)| Instr::MovHi { rd, imm }),
        (prop::sample::select(&ShiftKind::ALL[..]), reg(), 0u8..=15)
            .prop_map(|(kind, rd, amount)| Instr::Shift { kind, rd, amount }),
        (prop::sample::select(&UnaryOp::ALL[..]), reg())
            .prop_map(|(op, rd)| Instr::Unary { op, rd }),
        (reg(), 0i8..=15).prop_map(|(rd, offset)| Instr::Ld {
            rd,
            base: Reg::R2,
            offset
        }),
        (reg(), 0i8..=15).prop_map(|(rs, offset)| Instr::St {
            rs,
            base: Reg::R2,
            offset
        }),
        // Forward-only conditional skip: always safe, lands on the next
        // instruction or the one after.
        (prop::sample::select(&Cond::ALL[..]), 0i16..=1)
            .prop_map(|(cond, offset)| Instr::Branch { cond, offset }),
        Just(Instr::Nop),
    ]
}

/// Program: r2 = scratch base (0x100), optional balanced sync section
/// around part of the body, then HALT. Padding NOPs guarantee forward
/// skips always land on executable code.
fn build(body: &[Instr], with_section: bool) -> Vec<u16> {
    let mut instrs = vec![
        // RSYNC = 0x200: clear of the 0x100.. data window so stores and
        // seed data can never corrupt the sync word.
        Instr::MovI {
            rd: Reg::R2,
            imm: 0,
        },
        Instr::MovHi {
            rd: Reg::R2,
            imm: 2,
        },
        Instr::Csr {
            op: CsrOp::WrSync,
            rd: Reg::R2,
        },
        // r2 = 0x100: the scratch data base used by loads and stores.
        Instr::MovI {
            rd: Reg::R2,
            imm: 0,
        },
        Instr::MovHi {
            rd: Reg::R2,
            imm: 1,
        },
    ];
    if with_section {
        instrs.push(Instr::Sinc { index: 9 });
    }
    instrs.extend_from_slice(body);
    instrs.push(Instr::Nop);
    instrs.push(Instr::Nop);
    if with_section {
        instrs.push(Instr::Sdec { index: 9 });
    }
    instrs.push(Instr::Halt);
    instrs
        .into_iter()
        .map(|i| encode(i).expect("encodable"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simple_host_and_single_core_platform_agree(
        body in prop::collection::vec(safe_instr(), 1..50),
        with_section in any::<bool>(),
        seed_data in prop::collection::vec(any::<u16>(), 16),
    ) {
        let words = build(&body, with_section);

        // Reference interpreter.
        let mut host = SimpleHost::new(&words);
        for (i, v) in seed_data.iter().enumerate() {
            host.set_dm(0x100 + i as u16, *v);
        }
        host.run(1_000_000).expect("host terminates");

        // Full platform, one core.
        let mut platform = Platform::new(
            PlatformConfig::paper_with_sync()
                .with_cores(1)
                .with_max_cycles(1_000_000),
        ).expect("valid config");
        platform.load_im(0, &words);
        for (i, v) in seed_data.iter().enumerate() {
            platform.set_dm(0x100 + i as u16, *v);
        }
        platform.run().expect("platform terminates");

        // Architectural state must match bit for bit.
        for r in Reg::ALL {
            prop_assert_eq!(
                host.core().reg(r),
                platform.core(0).reg(r),
                "register {} differs", r
            );
        }
        prop_assert_eq!(host.core().pc(), platform.core(0).pc());
        for i in 0..64u16 {
            prop_assert_eq!(
                host.dm(0x100 + i),
                platform.dm(0x100 + i),
                "dm[0x100+{}]", i
            );
        }

        // With a single uncontended core the platform's arbitration must
        // be timing-transparent: identical cycle counts.
        prop_assert_eq!(host.core().cycles(), platform.core(0).cycles());
        prop_assert_eq!(
            host.core().stats().retired,
            platform.core(0).stats().retired
        );
    }
}

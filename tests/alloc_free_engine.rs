//! Proof that the cycle engine is allocation-free in steady state: wrap
//! the global allocator in a counter, warm a platform past its buffer
//! growth phase, then step it for thousands of cycles — through fetches,
//! bank conflicts, synchronizer barriers, sleeps and wakes — and assert
//! the allocation count does not move.
//!
//! This file holds exactly one test, so no concurrent test can pollute
//! the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use ulp_lockstep::isa::asm::assemble;
use ulp_lockstep::platform::{ExecTier, Platform, PlatformConfig};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// An endless SPMD workload touching every engine phase: per-core
/// data-dependent spins, a shared `SINC`/`SDEC` barrier (sleep + wake),
/// loads, stores and an 8-way data bank conflict.
const SPIN_SRC: &str = "
        rdid r1
        mov  r2, r1
        shl  r2, #11       ; private bank base
        li   r3, 18432     ; sync array base
        wrsync r3
        mov  r4, r1
loop:   sinc #0
        add  r4, r1
        addi r4, #3
        mov  r5, r4
        movi r0, #7
        and  r5, r0
        inc  r5
spin:   addi r5, #-1       ; data-dependent 1..8 rounds
        bne  spin
        st   r4, [r2]
        ld   r0, [r2]
        ld   r6, [r1]      ; 8 distinct addresses, one bank: conflict
        sdec #0
        br   loop";

#[test]
fn steady_state_step_performs_zero_heap_allocations() {
    let program = assemble(SPIN_SRC).expect("program assembles");
    let cfg = PlatformConfig::paper_with_sync().with_max_cycles(u64::MAX);
    let mut platform = Platform::new(cfg).expect("valid config");
    platform.load_program(&program);

    // Warm-up: let every scratch buffer reach its steady capacity.
    for _ in 0..2_000 {
        platform.step();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        platform.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "Platform::step allocated in steady state"
    );

    // The empty-observer fast path: `step_with(&mut [])` takes the same
    // observer-free engine as `step()` and must be just as allocation-free.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        platform.step_with(&mut []);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "Platform::step_with(&mut []) allocated in steady state"
    );

    // Sanity: the measured window really exercised the machine.
    let stats = platform.stats();
    assert!(stats.cycles >= 22_000);
    assert!(stats.sync.expect("synchronizer present").batches > 0);
    assert!(stats.dxbar.conflict_cycles > 0, "conflicts exercised");
    assert!(
        stats.core_total.sleep_cycles > 0,
        "barrier sleeps exercised"
    );

    // The compiled tier replays cycles through cached traces; once the
    // hot blocks are translated (warm-up), tiered stepping is also
    // allocation-free — both its compiled cycles and its interpreter
    // fallback cycles.
    let cfg = PlatformConfig::paper_with_sync()
        .with_max_cycles(u64::MAX)
        .with_exec_tier(ExecTier::Compiled);
    let mut platform = Platform::new(cfg).expect("valid config");
    platform.load_program(&program);
    for _ in 0..2_000 {
        platform.step_tiered();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut compiled = 0u64;
    for _ in 0..10_000 {
        compiled += platform.step_tiered() as u64;
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "Platform::step_tiered allocated in steady state"
    );
    assert!(compiled > 0, "the window replayed compiled cycles");
}

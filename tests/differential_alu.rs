//! Differential testing of the ALU semantics against closed-form wide
//! arithmetic, sampled densely across the 16-bit space.

use ulp_lockstep::cpu::{alu_exec, shift_exec, unary_exec};
use ulp_lockstep::isa::{AluOp, Flags, ShiftKind, UnaryOp};

const F0: Flags = Flags {
    z: false,
    n: false,
    c: false,
    v: false,
};

/// A spread of interesting and pseudo-random 16-bit values.
fn samples() -> Vec<u16> {
    let mut v = vec![
        0, 1, 2, 0x7FFE, 0x7FFF, 0x8000, 0x8001, 0xFFFE, 0xFFFF, 0x00FF, 0xFF00, 0x5555, 0xAAAA,
    ];
    let mut x = 0x1234u16;
    for _ in 0..120 {
        // xorshift-ish deterministic spread
        x ^= x << 7;
        x ^= x >> 9;
        x = x.wrapping_mul(0x2545);
        v.push(x);
    }
    v
}

#[test]
fn add_sub_match_wide_arithmetic() {
    for &a in &samples() {
        for &b in &samples() {
            let add = alu_exec(AluOp::Add, a, b, F0);
            let wide = a as u32 + b as u32;
            assert_eq!(add.value, wide as u16, "ADD {a:#x} {b:#x}");
            assert_eq!(add.flags.c, wide > 0xFFFF, "ADD carry {a:#x} {b:#x}");
            let signed = a as i16 as i32 + b as i16 as i32;
            assert_eq!(
                add.flags.v,
                signed < i16::MIN as i32 || signed > i16::MAX as i32,
                "ADD overflow {a:#x} {b:#x}"
            );
            assert_eq!(add.flags.z, add.value == 0);
            assert_eq!(add.flags.n, add.value & 0x8000 != 0);

            let sub = alu_exec(AluOp::Sub, a, b, F0);
            assert_eq!(sub.value, a.wrapping_sub(b), "SUB {a:#x} {b:#x}");
            assert_eq!(sub.flags.c, a >= b, "SUB not-borrow {a:#x} {b:#x}");
            let signed = a as i16 as i32 - b as i16 as i32;
            assert_eq!(
                sub.flags.v,
                signed < i16::MIN as i32 || signed > i16::MAX as i32,
                "SUB overflow {a:#x} {b:#x}"
            );
        }
    }
}

#[test]
fn adc_sbc_implement_exact_32bit_chains() {
    // Every sampled pair, assembled as 32-bit halves, must add/subtract
    // exactly through the carry chain.
    for &lo_a in &samples()[..40] {
        for &hi_a in &[0u16, 1, 0x7FFF, 0xFFFF] {
            for &lo_b in &samples()[..40] {
                let hi_b = lo_b.rotate_left(3);
                let a32 = (hi_a as u32) << 16 | lo_a as u32;
                let b32 = (hi_b as u32) << 16 | lo_b as u32;

                let lo = alu_exec(AluOp::Add, lo_a, lo_b, F0);
                let hi = alu_exec(AluOp::Adc, hi_a, hi_b, lo.flags);
                let got = (hi.value as u32) << 16 | lo.value as u32;
                assert_eq!(got, a32.wrapping_add(b32), "ADD32 {a32:#x}+{b32:#x}");

                let lo = alu_exec(AluOp::Sub, lo_a, lo_b, F0);
                let hi = alu_exec(AluOp::Sbc, hi_a, hi_b, lo.flags);
                let got = (hi.value as u32) << 16 | lo.value as u32;
                assert_eq!(got, a32.wrapping_sub(b32), "SUB32 {a32:#x}-{b32:#x}");
            }
        }
    }
}

#[test]
fn mul_mulh_form_exact_signed_product() {
    for &a in &samples() {
        for &b in &samples()[..40] {
            let lo = alu_exec(AluOp::Mul, a, b, F0).value;
            let hi = alu_exec(AluOp::Mulh, a, b, F0).value;
            let got = ((hi as u32) << 16 | lo as u32) as i32;
            let want = (a as i16 as i32).wrapping_mul(b as i16 as i32);
            assert_eq!(got, want, "MUL/MULH {:#x} {:#x}", a, b);
        }
    }
}

#[test]
fn shifts_match_native_semantics() {
    for &a in &samples() {
        for amount in 1u8..=15 {
            assert_eq!(shift_exec(ShiftKind::Shl, a, amount, F0).value, a << amount);
            assert_eq!(shift_exec(ShiftKind::Shr, a, amount, F0).value, a >> amount);
            assert_eq!(
                shift_exec(ShiftKind::Asr, a, amount, F0).value,
                ((a as i16) >> amount) as u16
            );
            assert_eq!(
                shift_exec(ShiftKind::Ror, a, amount, F0).value,
                a.rotate_right(amount as u32)
            );
        }
    }
}

#[test]
fn unaries_match_native_semantics() {
    for &a in &samples() {
        assert_eq!(unary_exec(UnaryOp::Not, a, F0).value, !a);
        assert_eq!(
            unary_exec(UnaryOp::Neg, a, F0).value,
            (a as i16).wrapping_neg() as u16
        );
        assert_eq!(
            unary_exec(UnaryOp::Sxtb, a, F0).value,
            (a as u8 as i8) as i16 as u16
        );
        assert_eq!(unary_exec(UnaryOp::Zxtb, a, F0).value, a & 0xFF);
        assert_eq!(unary_exec(UnaryOp::Swpb, a, F0).value, a.rotate_right(8));
        assert_eq!(
            unary_exec(UnaryOp::Abs, a, F0).value,
            (a as i16).wrapping_abs() as u16
        );
    }
}

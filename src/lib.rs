//! # ulp-lockstep
//!
//! A from-scratch reproduction of *"Synchronizing Code Execution on
//! Ultra-Low-Power Embedded Multi-Channel Signal Analysis Platforms"*
//! (Dogan et al., DATE 2013): a cycle-level simulator of an 8-core
//! ultra-low-power SIMD-capable platform with a hardware synchronizer and a
//! `SINC`/`SDEC` instruction-set extension that keep the cores in lockstep,
//! plus the paper's ECG benchmarks and its voltage-scaling power model.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`isa`] — the ULP16 instruction set, assembler and disassembler;
//! * [`cpu`] — the single-core micro-architecture model;
//! * [`mem`] — banked memories and broadcast-capable crossbars;
//! * [`sync`] — the hardware synchronizer (the paper's contribution);
//! * [`platform`] — the composed multi-core platform and cycle loop;
//! * [`biosignal`] — synthetic ECG generation and golden reference DSP;
//! * [`kernels`] — the MRPFLTR / MRPDLN / SQRT32 benchmarks in assembly;
//! * [`power`] — the calibrated event-energy and voltage-scaling model;
//! * [`telemetry`] — job-lifecycle tracing, a metrics registry, and
//!   Chrome-trace / JSON-snapshot exporters shared by the service stack;
//! * [`service`] — the batch simulation service: a work-stealing worker
//!   pool with cached platforms and streamed job results;
//! * [`shard`] — workload sharding: long recordings split into
//!   overlapping time shards, run as service jobs, merged back into one
//!   logical run with recording-level statistics and energy.
//!
//! See the repository `README.md` for a quickstart and `EXPERIMENTS.md` for
//! the paper-versus-measured reproduction results.

pub use ulp_biosignal as biosignal;
pub use ulp_cpu as cpu;
pub use ulp_isa as isa;
pub use ulp_jit as jit;
pub use ulp_kernels as kernels;
pub use ulp_mem as mem;
pub use ulp_platform as platform;
pub use ulp_power as power;
pub use ulp_service as service;
pub use ulp_shard as shard;
pub use ulp_sync as sync;
pub use ulp_telemetry as telemetry;
